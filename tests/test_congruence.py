"""Unit tests for the congruence closure engine."""

from repro.cq.congruence import CongruenceClosure
from repro.lang.ast import Attr, Const, Dom, Eq, Lookup, SchemaRef, Var


class TestBasicEquality:
    def test_reflexive(self):
        closure = CongruenceClosure()
        assert closure.equal(Var("x"), Var("x"))

    def test_unrelated_terms_not_equal(self):
        closure = CongruenceClosure()
        assert not closure.equal(Var("x"), Var("y"))

    def test_merge_makes_equal(self):
        closure = CongruenceClosure()
        closure.merge(Var("x"), Var("y"))
        assert closure.equal(Var("x"), Var("y"))

    def test_symmetry(self):
        closure = CongruenceClosure()
        closure.merge(Var("x"), Var("y"))
        assert closure.equal(Var("y"), Var("x"))

    def test_transitivity(self):
        closure = CongruenceClosure()
        closure.merge(Var("x"), Var("y"))
        closure.merge(Var("y"), Var("z"))
        assert closure.equal(Var("x"), Var("z"))

    def test_from_equalities_constructor(self):
        closure = CongruenceClosure([Eq(Var("x"), Var("y")), Eq(Var("y"), Const(1))])
        assert closure.equal(Var("x"), Const(1))

    def test_distinct_constants_stay_distinct(self):
        closure = CongruenceClosure()
        assert not closure.equal(Const(1), Const(2))


class TestCongruencePropagation:
    def test_attribute_congruence(self):
        closure = CongruenceClosure()
        closure.add_term(Attr(Var("x"), "A"))
        closure.add_term(Attr(Var("y"), "A"))
        closure.merge(Var("x"), Var("y"))
        assert closure.equal(Attr(Var("x"), "A"), Attr(Var("y"), "A"))

    def test_attribute_congruence_with_late_interning(self):
        closure = CongruenceClosure()
        closure.add_term(Attr(Var("x"), "A"))
        closure.merge(Var("x"), Var("y"))
        # Attr(y, A) is only interned by the query itself.
        assert closure.equal(Attr(Var("x"), "A"), Attr(Var("y"), "A"))

    def test_lookup_congruence_on_key(self):
        closure = CongruenceClosure()
        dictionary = SchemaRef("M")
        closure.add_term(Attr(Lookup(dictionary, Var("k")), "N"))
        closure.merge(Var("k"), Var("j"))
        assert closure.equal(Lookup(dictionary, Var("k")), Lookup(dictionary, Var("j")))

    def test_lookup_congruence_both_orders_of_query(self):
        # Regression test: asking about the equality must not depend on which
        # side is interned first (the ordering bug found during EC3 bring-up).
        closure = CongruenceClosure()
        closure.add_term(Attr(Lookup(SchemaRef("M1"), Var("k1")), "N"))
        closure.merge(Var("k1"), Var("o2"))
        assert closure.equal(Lookup(SchemaRef("M1"), Var("k1")), Lookup(SchemaRef("M1"), Var("o2")))
        assert closure.equal(Lookup(SchemaRef("M1"), Var("o2")), Lookup(SchemaRef("M1"), Var("k1")))

    def test_dom_congruence(self):
        closure = CongruenceClosure()
        closure.add_term(Dom(Var("x")))
        closure.merge(Var("x"), Var("y"))
        assert closure.equal(Dom(Var("x")), Dom(Var("y")))

    def test_nested_congruence(self):
        closure = CongruenceClosure()
        closure.add_term(Attr(Attr(Var("x"), "A"), "B"))
        closure.merge(Var("x"), Var("y"))
        assert closure.equal(Attr(Attr(Var("x"), "A"), "B"), Attr(Attr(Var("y"), "A"), "B"))

    def test_different_attributes_not_merged(self):
        closure = CongruenceClosure()
        closure.merge(Var("x"), Var("y"))
        assert not closure.equal(Attr(Var("x"), "A"), Attr(Var("y"), "B"))

    def test_merging_attribute_values_does_not_merge_bases(self):
        closure = CongruenceClosure()
        closure.merge(Attr(Var("x"), "A"), Attr(Var("y"), "A"))
        assert not closure.equal(Var("x"), Var("y"))


class TestIntrospection:
    def test_classes_partition_terms(self):
        closure = CongruenceClosure()
        closure.merge(Var("x"), Var("y"))
        closure.add_term(Var("z"))
        classes = closure.classes()
        assert sorted(len(cls) for cls in classes) == [1, 2]

    def test_equivalent_terms(self):
        closure = CongruenceClosure()
        closure.merge(Var("x"), Var("y"))
        terms = closure.equivalent_terms(Var("x"))
        assert Var("x") in terms and Var("y") in terms

    def test_representative_is_deterministic(self):
        closure = CongruenceClosure()
        closure.merge(Var("x"), Var("y"))
        assert closure.representative(Var("x")) == closure.representative(Var("y"))

    def test_has_term(self):
        closure = CongruenceClosure()
        closure.add_term(Var("x"))
        assert closure.has_term(Var("x"))
        assert not closure.has_term(Var("y"))

    def test_len_counts_interned_terms(self):
        closure = CongruenceClosure()
        closure.add_term(Attr(Var("x"), "A"))
        assert len(closure) == 2

    def test_classes_order_matches_interning_order(self):
        closure = CongruenceClosure()
        closure.add_term(Var("a"))
        closure.add_term(Var("b"))
        closure.add_term(Var("c"))
        closure.merge(Var("b"), Var("c"))
        classes = closure.classes()
        assert classes == [[Var("a")], [Var("b"), Var("c")]]

    def test_representative_is_smallest_interned_term(self):
        closure = CongruenceClosure()
        closure.add_term(Var("later"))
        closure.merge(Var("later"), Var("web"))
        assert closure.representative(Var("web")) == Var("later")


class TestGenerationsAndLog:
    def test_generation_bumps_only_on_union(self):
        closure = CongruenceClosure()
        before = closure.generation
        closure.add_term(Var("x"))
        closure.add_term(Var("y"))
        assert closure.generation == before  # interning alone merges nothing
        closure.merge(Var("x"), Var("y"))
        assert closure.generation == before + 1
        assert closure.snapshot() == closure.generation

    def test_congruence_cascade_is_logged(self):
        closure = CongruenceClosure()
        closure.add_term(Attr(Var("x"), "A"))
        closure.add_term(Attr(Var("y"), "A"))
        mark = closure.union_count
        closure.merge(Var("x"), Var("y"))
        # The merge of x and y cascades to x.A and y.A: two unions.
        assert closure.union_count == mark + 2
        disturbed = closure.unions_since(mark)
        members = {term for root in disturbed for term in closure.class_terms(root)}
        assert {Var("x"), Var("y"), Attr(Var("x"), "A"), Attr(Var("y"), "A")} <= members

    def test_root_of_is_stable_within_a_generation(self):
        closure = CongruenceClosure()
        closure.merge(Var("x"), Var("y"))
        generation = closure.generation
        assert closure.root_of(Var("x")) == closure.root_of(Var("y"))
        assert closure.generation == generation

    def test_union_pairs_since_replays_bucket_moves(self):
        closure = CongruenceClosure()
        roots = {var: closure.root_of(Var(var)) for var in "abc"}
        mark = closure.union_count
        closure.merge(Var("a"), Var("b"))
        closure.merge(Var("b"), Var("c"))
        pairs = closure.union_pairs_since(mark)
        assert len(pairs) == 2
        # Replaying the pairs maps every absorbed root to the final class.
        buckets = {root: [var] for var, root in roots.items()}
        for surviving, absorbed in pairs:
            moved = buckets.pop(absorbed, None)
            if moved:
                buckets.setdefault(surviving, []).extend(moved)
        assert len(buckets) == 1
        assert sorted(next(iter(buckets.values()))) == ["a", "b", "c"]
