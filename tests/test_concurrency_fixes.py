"""Regression tests for the races repro-lint surfaced (PR 7).

Each class pins one genuine finding from the analyzer's first run over the
serving stack: counter updates that used to happen outside their lock,
attribute-by-attribute stats reads that could observe totals that never
coexisted, and the CLI's ad-hoc ``write_lock`` that now lives on the object
it guards (``_StreamEmitter``).
"""

import io
import json
import socket
import threading

from repro.chase.implication import ChaseCache, ChaseCacheRegistry
from repro.cli import _StreamEmitter
from repro.cq.memo import ContainmentMemo
from repro.errors import SnapshotError
from repro.service.client import OptimizerClient
from repro.service.snapshots import SnapshotManager

THREADS = 8
ROUNDS = 50


def _hammer(worker, threads=THREADS):
    crew = [threading.Thread(target=worker, args=(i,)) for i in range(threads)]
    for t in crew:
        t.start()
    for t in crew:
        t.join(timeout=30.0)
    assert not any(t.is_alive() for t in crew)


class TestSnapshotManagerCounters:
    """``save()`` used to bump ``snapshots_written`` outside ``_lock``."""

    class _Service:
        def __init__(self, fail=False):
            self.fail = fail
            self.calls = 0
            self._lock = threading.Lock()

        def save_caches(self, path, faults=None):
            with self._lock:
                self.calls += 1
            if self.fail:
                raise SnapshotError("injected")
            return 1

    def test_concurrent_saves_lose_no_increment(self, tmp_path):
        service = self._Service()
        manager = SnapshotManager(service, tmp_path / "x.snap")

        def worker(_i):
            for _ in range(ROUNDS):
                assert manager.save() == 1

        _hammer(worker)
        stats = manager.stats()
        assert stats["snapshots_written"] == THREADS * ROUNDS == service.calls
        assert stats["snapshot_failures"] == 0

    def test_concurrent_failures_lose_no_increment(self, tmp_path):
        manager = SnapshotManager(self._Service(fail=True), tmp_path / "x.snap")

        def worker(_i):
            for _ in range(ROUNDS):
                assert manager.save() is None

        _hammer(worker)
        stats = manager.stats()
        assert stats["snapshot_failures"] == THREADS * ROUNDS
        assert stats["last_error"] == "injected"
        assert stats["snapshots_written"] == 0


class TestChaseCacheAccounting:
    """stats()/len() snapshot under the lock; merge() snapshots the donor."""

    def test_stats_never_observes_torn_hit_miss_totals(self):
        cache = ChaseCache([])
        stop = threading.Event()
        torn = []

        def reader():
            while not stop.is_set():
                stats = cache.stats()
                if stats["hits"] != stats["misses"]:
                    torn.append(stats)

        observer = threading.Thread(target=reader)
        observer.start()

        def worker(i):
            for j in range(ROUNDS):
                # hits and misses move in lockstep: any snapshot where they
                # differ interleaved with a writer mid-update.
                cache.merge_exported({(i, j): j}, hits=1, misses=1)

        _hammer(worker)
        stop.set()
        observer.join(timeout=30.0)
        assert torn == []
        stats = cache.stats()
        assert stats["hits"] == stats["misses"] == THREADS * ROUNDS
        assert stats["entries"] == len(cache) == THREADS * ROUNDS

    def test_merge_from_a_live_donor(self):
        donor = ChaseCache([])
        merged = ChaseCache([])
        stop = threading.Event()

        def writer():
            serial = 0
            while not stop.is_set():
                donor.merge_exported({("live", serial): serial})
                serial += 1

        mutator = threading.Thread(target=writer)
        mutator.start()
        try:
            for _ in range(ROUNDS):
                merged.merge(donor)  # snapshots under donor._lock: no tear
        finally:
            stop.set()
            mutator.join(timeout=30.0)
        merged.merge(donor)
        assert len(merged) == len(donor)

    def test_registry_set_max_entries_rebounds_existing_caches(self):
        registry = ChaseCacheRegistry(max_entries=None)
        cache = registry.for_constraints([])
        assert cache.max_entries is None
        registry.set_max_entries(5)
        assert registry.max_entries == 5
        assert cache.max_entries == 5
        # Caches created after the rebound inherit it too.
        assert registry.for_constraints([]) is cache


class TestContainmentMemoAccounting:
    """len() and hit_rate take the lock (no mid-insert observation)."""

    def test_hit_rate_never_observes_torn_counters(self):
        memo = ContainmentMemo()
        stop = threading.Event()
        torn = []

        def reader():
            while not stop.is_set():
                rate = memo.hit_rate
                if rate not in (0.0, 0.5):
                    torn.append(rate)

        observer = threading.Thread(target=reader)
        observer.start()

        def worker(i):
            donor = ContainmentMemo()
            donor.hits = 1
            donor.misses = 1
            for j in range(ROUNDS):
                donor._verdicts = {(f"s{i}", f"t{j}"): True}
                memo.merge(donor)

        _hammer(worker)
        stop.set()
        observer.join(timeout=30.0)
        assert torn == []
        assert memo.hit_rate == 0.5
        assert len(memo) == memo.stats()["entries"] == THREADS * ROUNDS


class TestClientClosedFlag:
    """``request()``'s retry exit test reads ``_closed`` under ``_link_lock``."""

    def test_is_closed_tracks_close(self):
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        try:
            client = OptimizerClient(port=listener.getsockname()[1])
            assert client._is_closed() is False
            client.close()
            assert client._is_closed() is True
            client.close()  # idempotent
            assert client.replays == 0
        finally:
            listener.close()


class TestStreamEmitter:
    """cli.py's bare ``write_lock`` local became a lock on the emitter."""

    def test_concurrent_emits_interleave_whole_lines(self):
        out = io.StringIO()
        emitter = _StreamEmitter(out)

        def worker(i):
            for j in range(ROUNDS):
                emitter.emit({"worker": i, "round": j})

        _hammer(worker)
        lines = out.getvalue().strip().splitlines()
        assert len(lines) == THREADS * ROUNDS
        seen = {(r["worker"], r["round"]) for r in map(json.loads, lines)}
        assert len(seen) == THREADS * ROUNDS  # every record intact, no tears

    def test_failure_flag(self):
        emitter = _StreamEmitter(io.StringIO())
        assert emitter.failed is False

        def worker(i):
            emitter.record_failure(f"r{i}")

        _hammer(worker)
        assert emitter.failed is True
