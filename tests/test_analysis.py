"""repro-lint analyzer suite: fixtures, suppressions, CLI contract, self-check.

Fixture-driven: ``tests/fixtures/analysis/`` holds one positive file (the
rule must fire) and one negative file (the analyzer must stay silent) per
checker, plus suppression fixtures.  The disable tests prove every checker
is load-bearing — running the corpus with a rule switched off makes that
rule's findings (and only those) disappear.  The final class pins the
repo-wide contract: ``python -m repro.analysis src/repro`` is clean.
"""

import re
from pathlib import Path

import pytest

from repro.analysis import ALL_CHECKERS, analyze_paths, analyze_source
from repro.analysis.runner import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    iter_python_files,
    main,
)
from repro.analysis.source import SUPPRESSION_RULE

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "analysis"
SRC = Path(__file__).resolve().parents[1] / "src" / "repro"

# This file covers the module-scope rules; the project-scope rules
# (lock-ordering, resource-lifecycle, metrics/protocol conformance) have
# their own corpus and suite in test_analysis_project.py.
RULES = sorted(cls.rule for cls in ALL_CHECKERS if cls.scope == "module")

#: rule id -> (positive fixture, expected finding count)
POSITIVE = {
    "lock-discipline": ("lock_discipline_pos.py", 2),
    "pickle-safety": ("pickle_safety_pos.py", 3),
    "deadline-propagation": ("deadline_pos.py", 1),
    "future-resolution": ("futures_pos.py", 3),
    "process-pool-boundary": ("process_boundary_pos.py", 3),
}

NEGATIVE = {
    "lock-discipline": "lock_discipline_neg.py",
    "pickle-safety": "pickle_safety_neg.py",
    "deadline-propagation": "deadline_neg.py",
    "future-resolution": "futures_neg.py",
    "process-pool-boundary": "process_boundary_neg.py",
}


def analyze_fixture(name, rules=None):
    findings, errors = analyze_paths([str(FIXTURES / name)], rules=rules)
    assert errors == []
    return findings


class TestFixtureCorpus:
    def test_corpus_is_complete(self):
        """Every registered rule has both a positive and a negative fixture."""
        assert set(POSITIVE) == set(RULES)
        assert set(NEGATIVE) == set(RULES)
        for name, _count in POSITIVE.values():
            assert (FIXTURES / name).exists(), name
        for name in NEGATIVE.values():
            assert (FIXTURES / name).exists(), name

    @pytest.mark.parametrize("rule", RULES)
    def test_positive_fixture_fires_exactly_its_rule(self, rule):
        """All checkers on: the positive fixture yields only its own rule."""
        name, count = POSITIVE[rule]
        findings = analyze_fixture(name)
        assert {f.rule for f in findings} == {rule}
        assert len(findings) == count

    @pytest.mark.parametrize("rule", RULES)
    def test_negative_fixture_is_silent(self, rule):
        """All checkers on: the disciplined twin produces zero findings."""
        assert analyze_fixture(NEGATIVE[rule]) == []

    @pytest.mark.parametrize("rule", RULES)
    def test_disabling_the_checker_silences_its_fixture(self, rule):
        """Each checker is load-bearing: drop it and its findings vanish.

        This is the fails-the-build-when-disabled guarantee — the positive
        fixture only trips when its checker is actually in the run.
        """
        others = [r for r in RULES if r != rule]
        name, _count = POSITIVE[rule]
        assert analyze_fixture(name, rules=others) == []
        assert analyze_fixture(name, rules=[rule]) != []


class TestPR6SnapshotPattern:
    """The bug class that motivated the analyzer, pinned as a fixture."""

    def test_pickling_a_guarded_container_outside_its_lock_is_flagged(self):
        findings = analyze_fixture("pickle_safety_pos.py")
        copies = [f for f in findings if "self.__dict__" in f.message]
        assert len(copies) == 1
        assert "outside the guarding lock" in copies[0].message
        assert "PR 6" in copies[0].message

    def test_missing_lock_strip_and_missing_getstate_are_flagged(self):
        messages = [f.message for f in analyze_fixture("pickle_safety_pos.py")]
        assert any("does not strip lock attribute '_lock'" in m for m in messages)
        assert any("defines no __getstate__" in m for m in messages)

    def test_locked_copy_plus_strip_is_accepted(self):
        assert analyze_fixture("pickle_safety_neg.py") == []


class TestSuppressions:
    def test_justified_suppressions_silence_line_and_scope(self):
        """suppression_ok.py violates two rules; both ignores carry reasons."""
        assert analyze_fixture("suppression_ok.py") == []

    def test_unjustified_suppression_reports_and_does_not_suppress(self):
        findings = analyze_fixture("suppression_bad.py")
        assert {f.rule for f in findings} == {SUPPRESSION_RULE, "lock-discipline"}

    def test_suppression_only_covers_named_rules(self):
        source = (
            "import threading\n"
            "lk = threading.Lock()"
            "  # repro-lint: ignore[pickle-safety] wrong rule named here\n"
        )
        findings = analyze_source(source)
        assert [f.rule for f in findings] == ["lock-discipline"]


class TestConventions:
    """Direct analyze_source probes of the comment conventions."""

    GUARDED = (
        "import threading\n"
        "\n"
        "\n"
        "class Box:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._items = []  # guarded-by: _lock\n"
        "\n"
        "{method}"
    )

    def _lock_findings(self, method):
        return analyze_source(
            self.GUARDED.format(method=method), rules=["lock-discipline"]
        )

    def test_holds_comment_marks_lock_as_held(self):
        assert self._lock_findings(
            "    def grow(self):  # holds: _lock\n        self._items.append(1)\n"
        ) == []

    def test_held_locks_do_not_leak_into_nested_defs(self):
        """A callback defined under `with` runs later, lock long released."""
        findings = self._lock_findings(
            "    def arm(self):\n"
            "        with self._lock:\n"
            "            def later():\n"
            "                return self._items\n"
            "            return later\n"
        )
        assert [f.rule for f in findings] == ["lock-discipline"]

    def test_init_is_exempt(self):
        """__init__ runs before the object is shared; bare writes are fine."""
        assert self._lock_findings("") == []


class TestRunnerContract:
    def test_findings_are_sorted_and_stable(self):
        first, errors = analyze_paths([str(FIXTURES)])
        assert errors == []
        second, _ = analyze_paths([str(FIXTURES)])
        assert first == second
        keys = [(f.path, f.line, f.col, f.rule) for f in first]
        assert keys == sorted(keys)

    def test_render_is_clickable_compiler_format(self):
        findings, _ = analyze_paths([str(FIXTURES / "deadline_pos.py")])
        for finding in findings:
            assert re.fullmatch(
                r"(?P<path>.+\.py):\d+:\d+: \[[a-z-]+\] .+", finding.render()
            )

    def test_iter_python_files_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            iter_python_files(["tests/fixtures/analysis/does_not_exist"])

    def test_syntax_error_is_a_parse_error_not_a_crash(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        findings, errors = analyze_paths([str(bad)])
        assert findings == []
        assert len(errors) == 1 and "cannot parse" in errors[0]


class TestCLI:
    def test_clean_fixture_exits_zero(self, capsys):
        assert main([str(FIXTURES / "futures_neg.py")]) == EXIT_CLEAN
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "repro-lint: clean" in captured.err

    def test_findings_exit_one_with_compiler_lines(self, capsys):
        assert main([str(FIXTURES / "futures_pos.py")]) == EXIT_FINDINGS
        captured = capsys.readouterr()
        lines = captured.out.strip().splitlines()
        assert len(lines) == 3
        assert all("[future-resolution]" in line for line in lines)
        assert "3 finding(s)" in captured.err

    def test_rule_filter_narrows_the_run(self, capsys):
        status = main(
            [str(FIXTURES), "--rule", "deadline-propagation"]
        )
        assert status == EXIT_FINDINGS
        captured = capsys.readouterr()
        # Only deadline findings (plus the never-filterable suppression rule).
        rules = {
            re.search(r"\[([a-z-]+)\]", line).group(1)
            for line in captured.out.strip().splitlines()
        }
        assert rules == {"deadline-propagation", SUPPRESSION_RULE}

    def test_missing_path_and_no_path_exit_two(self, capsys):
        assert main(["tests/fixtures/analysis/nope"]) == EXIT_ERROR
        assert main([]) == EXIT_ERROR
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        listed = capsys.readouterr().out
        for rule in RULES:
            assert rule in listed


class TestRepoIsClean:
    def test_analyzer_is_clean_on_the_serving_stack(self):
        """The CI gate: the whole package analyzes clean, no parse errors."""
        findings, errors = analyze_paths([str(SRC)])
        assert errors == []
        assert findings == [], "\n".join(f.render() for f in findings)
