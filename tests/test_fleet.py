"""Fleet layer: consistent-hash routing, sync exchange, shared snapshot store.

The differential discipline of :mod:`tests.test_differential` extended to
the fleet: a router in front of N backend servers must be *invisible* —
identical plan-set digests to a fresh single-shot run for every request —
while the behaviours that make a fleet worth running stay observable:

* ``overloaded`` responses are re-routed to the next replica on the ring,
  not shed (and shed only when *every* backend rejects);
* a dead backend fails over and flips the health gauge, never an error to
  the client while a replica lives;
* the ``sync`` exchange moves chase-cache entries and containment verdicts
  between processes, guarded by the structural constraint digest — a
  tampered digest is rejected whole;
* the shared snapshot store warms a *fresh* process from any fleet
  member's saves, degrading per file on corruption.

Plus the routing-identity regressions this PR fixes: constraint sets whose
names collide but whose bodies differ must never alias (shard index,
session label, ring placement), and a server's ``retry_after`` hint must be
honoured exactly rather than clamped into the jitter schedule.
"""

import random
import threading
import time

import pytest

from repro.chase.implication import constraints_digest
from repro.schema.constraints import Dependency
from repro.service import OptimizerClient, OptimizerServer, OptimizerService
from repro.service.fleet import (
    FleetRouter,
    HashRing,
    SnapshotStore,
    StoreSaver,
    SyncExchanger,
    parse_backend,
)
from repro.service.protocol import WORKLOAD_BUILDERS, plan_digest
from repro.service.shard import session_label, shard_index
from repro.service.snapshots import SnapshotManager
from repro.workloads import build_ec2

#: Generous bound for every join/wait in this module: a hang is a bug.
JOIN_TIMEOUT = 120.0

#: The differential request mix (mirrors tests/test_differential.py): every
#: workload family and every strategy, small enough to run twice.
MIX = [
    ("ec1", {"relations": 2, "secondary_indexes": 1}, "fb"),
    ("ec1", {"relations": 3, "secondary_indexes": 0}, "ocs"),
    ("ec2", {"stars": 1, "corners": 3, "views": 1}, "fb"),
    ("ec2", {"stars": 1, "corners": 3, "views": 2}, "oqf"),
    ("ec3", {"classes": 3, "asrs": 0}, "fb"),
    ("ec3", {"classes": 3, "asrs": 1}, "ocs"),
]

EC2_REQUEST = {
    "workload": "ec2",
    "params": {"stars": 1, "corners": 3, "views": 1},
    "strategy": "fb",
}


def _mix_records(rounds=1):
    records = []
    for round_index in range(rounds):
        for index, (name, params, strategy) in enumerate(MIX):
            records.append(
                {
                    "id": f"m{round_index}-{index}",
                    "workload": name,
                    "params": dict(params),
                    "strategy": strategy,
                }
            )
    return records


def _single_shot_digests(rounds=1):
    digests = []
    for _ in range(rounds):
        for name, params, strategy in MIX:
            builder, _ = WORKLOAD_BUILDERS[name]
            workload = builder(**params)
            result = workload.optimizer().optimize(workload.query, strategy=strategy)
            digests.append(plan_digest(result.plans))
    return digests


def _offline_client(backoff_base=0.05, backoff_max=2.0, backoff_seed=0):
    """An :class:`OptimizerClient` with no socket, for the pure backoff math.

    ``__init__`` dials the server eagerly; the delay schedule
    (:meth:`_next_delay` / :meth:`_jitter`) only touches these attributes.
    """
    client = OptimizerClient.__new__(OptimizerClient)
    client.backoff_base = backoff_base
    client.backoff_max = backoff_max
    client._rng = random.Random(backoff_seed)
    client._rng_lock = threading.Lock()
    return client


# ---------------------------------------------------------------------- #
# the routing-identity bugfix: structural digests, not sorted names
# ---------------------------------------------------------------------- #
class TestRoutingIdentity:
    """Same constraint *names*, different *bodies* — must never alias."""

    @staticmethod
    def _same_name_different_body():
        first = [
            Dependency.parse(
                "DEP", "forall r in R implies exists s in S where s.A = r.A"
            )
        ]
        second = [
            Dependency.parse(
                "DEP", "forall r in R implies exists t in T where t.B = r.B"
            )
        ]
        return first, second

    def test_structural_digests_differ(self):
        first, second = self._same_name_different_body()
        assert constraints_digest(first) != constraints_digest(second)

    def test_shard_index_is_digest_based(self):
        """The placement hash is the structural digest's leading bits —
        the pre-fleet name-only hash sent both sets to the same shard and
        (worse) the same fleet session."""
        first, second = self._same_name_different_body()
        for constraints in (first, second):
            expected = int(constraints_digest(constraints)[:16], 16)
            for shard_count in (1, 2, 3, 7, 1024):
                assert shard_index(constraints, shard_count) == expected % shard_count
        # With a wide modulus the two sets land apart (aliasing would put
        # re-routed traffic and exchanged state under one identity).
        assert shard_index(first, 1 << 60) != shard_index(second, 1 << 60)

    def test_session_labels_differ(self):
        first, second = self._same_name_different_body()
        label_first, label_second = session_label(first), session_label(second)
        assert label_first != label_second
        assert label_first.startswith("1c-")
        assert label_first == f"1c-{constraints_digest(first)[:8]}"

    def test_ring_placement_keys_off_the_structural_digest(self):
        first, second = self._same_name_different_body()
        ring = HashRing(["a:1", "b:2", "c:3", "d:4"], replicas=64)
        preference_first = ring.preference(constraints_digest(first))
        preference_second = ring.preference(constraints_digest(second))
        # Distinct digests get independent walks; equal digests identical ones.
        assert preference_first == ring.preference(constraints_digest(first))
        assert set(preference_first) == set(preference_second) == {"a:1", "b:2", "c:3", "d:4"}
        assert preference_first != preference_second


# ---------------------------------------------------------------------- #
# the backoff bugfixes: exact retry_after hints, locked jitter RNG
# ---------------------------------------------------------------------- #
class TestBackoffHints:
    def test_retry_after_hint_is_honoured_exactly(self):
        """A hint above ``backoff_max`` must not be clamped or jittered —
        clamping made the client come back *earlier* than the overloaded
        server asked, re-hammering the very shard that shed it."""
        client = _offline_client(backoff_base=0.05, backoff_max=2.0)
        assert client._next_delay(0, suggested=10.0) == 10.0
        assert client._next_delay(7, suggested=10.0) == 10.0  # attempt-independent
        assert client._next_delay(0, suggested=0.125) == 0.125  # below the cap too
        assert client._next_delay(0, suggested=-1.0) == 0.0  # garbage clamps to now

    def test_hint_is_deterministic_across_draws(self):
        """The hint path must not consume (or depend on) the jitter stream."""
        first = _offline_client(backoff_seed=1)
        second = _offline_client(backoff_seed=2)
        assert first._next_delay(3, suggested=5.5) == second._next_delay(3, suggested=5.5)
        # And it must not advance the RNG: computed backoff stays aligned.
        reference = _offline_client(backoff_seed=1)
        first._next_delay(0, suggested=9.0)
        assert first._next_delay(1) == reference._next_delay(1)

    def test_computed_backoff_stays_capped_and_jittered(self):
        client = _offline_client(backoff_base=0.05, backoff_max=2.0)
        for attempt in range(10):
            delay = client._next_delay(attempt)
            base = min(2.0, 0.05 * (2**attempt))
            assert base <= delay <= base * 1.25

    def test_deadline_still_bounds_a_long_hint(self):
        """The one legitimate cap on a hint: the caller's own deadline."""
        client = _offline_client()
        give_up_at = time.monotonic() + 0.05
        start = time.monotonic()
        assert client._backoff(0, give_up_at, suggested=30.0) is False
        assert time.monotonic() - start < 1.0  # refused, not slept


class TestJitterRngLocking:
    def test_concurrent_draws_are_serialised(self):
        """8 threads share one client's jitter RNG; with the per-RNG lock
        the draws are exactly the seeded sequence (in some order) — an
        unlocked ``random.Random`` can tear its internal state instead."""
        client = _offline_client(backoff_seed=1234)
        draws = []
        draws_lock = threading.Lock()

        def worker():
            for _ in range(200):
                value = client._jitter()
                with draws_lock:
                    draws.append(value)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=JOIN_TIMEOUT)
            assert not thread.is_alive()
        reference = random.Random(1234)
        expected = sorted(reference.random() for _ in range(8 * 200))
        assert sorted(draws) == expected


# ---------------------------------------------------------------------- #
# membership: backend specs and the consistent-hash ring
# ---------------------------------------------------------------------- #
class TestMembership:
    def test_parse_backend(self):
        assert parse_backend("example.org:7411") == ("example.org", 7411)
        assert parse_backend(":7411") == ("127.0.0.1", 7411)
        for bad in ("nope", "host:", "host:abc", ""):
            with pytest.raises(ValueError):
                parse_backend(bad)

    def test_ring_routes_deterministically_and_covers_all_backends(self):
        names = ["a:1", "b:2", "c:3"]
        ring = HashRing(names, replicas=64)
        keys = [constraints_digest([f"k{i}"]) for i in range(64)]
        for key in keys:
            preference = ring.preference(key)
            assert preference[0] == ring.route(key)
            assert sorted(preference) == sorted(names)  # all, distinct
            assert preference == ring.preference(key)  # memoised + stable
        assert len({ring.route(key) for key in keys}) == len(names)  # spread

    def test_membership_change_only_moves_keys_to_the_new_backend(self):
        """The consistent-hashing contract: adding a replica never shuffles
        keys *between* surviving backends — the moved keys all land on the
        newcomer, so the rest of the fleet keeps its warm sessions."""
        names = ["a:1", "b:2", "c:3"]
        before = HashRing(names, replicas=64)
        after = HashRing(names + ["d:4"], replicas=64)
        moved = 0
        for i in range(256):
            key = constraints_digest([f"k{i}"])
            if before.route(key) != after.route(key):
                moved += 1
                assert after.route(key) == "d:4"
        assert 0 < moved < 256  # the newcomer took some keys, not all

    def test_ring_rejects_empty_membership(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing(["a:1"], replicas=0)


# ---------------------------------------------------------------------- #
# the fleet differential: a router in front of N backends is invisible
# ---------------------------------------------------------------------- #
class TestFleetDifferential:
    def test_routed_fleet_matches_single_shot(self):
        """Cold + warm rounds of the full mix through router + 2 backends:
        identical plan-set digests to the single-shot reference, every
        request routed (none shed, none errored), and the per-backend
        spread is exactly what the ring dictates."""
        reference = _single_shot_digests(rounds=2)
        records = _mix_records(rounds=2)
        with OptimizerServer(shards=1, workers=2) as server_a:
            with OptimizerServer(shards=1, workers=2) as server_b:
                backends = [
                    f"127.0.0.1:{server_a.port}",
                    f"127.0.0.1:{server_b.port}",
                ]
                with FleetRouter(backends) as router:
                    with OptimizerClient(port=router.port) as client:
                        responses = client.request_many(records, timeout=JOIN_TIMEOUT)
                    stats = router.stats()
                    expected_primary = {}
                    for name, params, _strategy in MIX:
                        builder, _ = WORKLOAD_BUILDERS[name]
                        workload = builder(**params)
                        digest = constraints_digest(workload.catalog.constraints())
                        expected_primary[digest] = router.ring.route(digest)
        assert [response["status"] for response in responses] == ["ok"] * len(records)
        assert [response["id"] for response in responses] == [r["id"] for r in records]
        assert [response["plan_digests"] for response in responses] == reference
        assert stats.requests == stats.routed == len(records)
        assert stats.shed == stats.errors == stats.failovers == 0
        assert stats.backends == stats.backends_healthy == 2
        # Placement is a pure function of the structural digest: with 6
        # distinct catalogs the ring spreads sessions over both backends.
        assert len(set(expected_primary.values())) == 2

    def test_router_stats_and_ping_ops_answered_locally(self):
        with OptimizerServer(shards=1, workers=1) as server:
            with FleetRouter([f"127.0.0.1:{server.port}"]) as router:
                with OptimizerClient(port=router.port) as client:
                    assert client.ping()
                    stats = client.stats()
        assert stats["backends"] == 1
        assert "routed" in stats and "rerouted" in stats and "shed" in stats

    def test_invalid_request_stops_at_the_router_edge(self):
        with OptimizerServer(shards=1, workers=1) as server:
            with FleetRouter([f"127.0.0.1:{server.port}"]) as router:
                with OptimizerClient(port=router.port) as client:
                    response = client.request(
                        {"id": "bad", "workload": "nope"}, timeout=JOIN_TIMEOUT
                    )
                stats = router.stats()
        assert response["status"] == "error"
        assert stats.errors == 1
        assert stats.routed == 0  # never burned a backend hop


# ---------------------------------------------------------------------- #
# overload re-routing and failover
# ---------------------------------------------------------------------- #
class TestOverloadReroute:
    @staticmethod
    def _blocking_optimizer(release, started):
        from repro.chase.optimizer import CBOptimizer

        class BlockingOptimizer(CBOptimizer):
            def optimize(self, query, **kwargs):
                started.set()
                assert release.wait(JOIN_TIMEOUT), "test never released the runner"
                return super().optimize(query, **kwargs)

        return BlockingOptimizer

    def test_overloaded_primary_reroutes_to_replica(self, monkeypatch):
        """Primary at capacity: the second request of the same catalog is
        re-routed to the replica and *succeeds* — the single-server
        behaviour (a typed shed) becomes a routed request."""
        import repro.service.shard as shard_module

        release, started = threading.Event(), threading.Event()
        monkeypatch.setattr(
            shard_module, "CBOptimizer", self._blocking_optimizer(release, started)
        )
        bounds = dict(shards=1, executor="serial", max_inflight=1, max_queue_depth=1)
        try:
            with OptimizerServer(**bounds) as server_a:
                with OptimizerServer(**bounds) as server_b:
                    backends = [
                        f"127.0.0.1:{server_a.port}",
                        f"127.0.0.1:{server_b.port}",
                    ]
                    with FleetRouter(backends) as router:
                        with OptimizerClient(port=router.port) as client:
                            first = client.submit(dict(EC2_REQUEST, id="f1"))
                            assert started.wait(JOIN_TIMEOUT)
                            # Same catalog -> same primary; its one slot is
                            # taken, so the router must hop to the replica.
                            second = client.submit(dict(EC2_REQUEST, id="f2"))
                            # Hold the primary's slot until the hop actually
                            # happened — releasing earlier would race the
                            # second request into the freed slot.
                            deadline = time.monotonic() + JOIN_TIMEOUT
                            while (
                                router.stats().rerouted < 1
                                and time.monotonic() < deadline
                            ):
                                time.sleep(0.01)
                            assert router.stats().rerouted == 1
                            release.set()
                            first_response = first.result(timeout=JOIN_TIMEOUT)
                            second_response = second.result(timeout=JOIN_TIMEOUT)
                        stats = router.stats()
        finally:
            release.set()
        assert first_response["status"] == "ok"
        assert second_response["status"] == "ok"
        assert first_response["plan_digests"] == second_response["plan_digests"]
        assert stats.routed == 2
        assert stats.rerouted == 1  # exactly the second request's extra hop
        assert stats.shed == 0

    def test_all_backends_overloaded_sheds_with_hint_intact(self, monkeypatch):
        """Only when *every* backend rejects does the router shed — and the
        last ``retry_after`` hint rides through so clients back off right."""
        import repro.service.shard as shard_module

        release, started = threading.Event(), threading.Event()
        monkeypatch.setattr(
            shard_module, "CBOptimizer", self._blocking_optimizer(release, started)
        )
        try:
            with OptimizerServer(
                shards=1,
                executor="serial",
                max_inflight=1,
                max_queue_depth=1,
                overload_retry_after=0.25,
            ) as server:
                with FleetRouter([f"127.0.0.1:{server.port}"]) as router:
                    with OptimizerClient(port=router.port) as client:
                        blocked = client.submit(dict(EC2_REQUEST, id="b1"))
                        assert started.wait(JOIN_TIMEOUT)
                        shed = client.request(
                            dict(EC2_REQUEST, id="b2"), timeout=JOIN_TIMEOUT
                        )
                        release.set()
                        assert blocked.result(timeout=JOIN_TIMEOUT)["status"] == "ok"
                    stats = router.stats()
        finally:
            release.set()
        assert shed["status"] == "overloaded"
        assert shed["retry_after"] == 0.25
        assert shed["id"] == "b2"
        assert stats.shed == 1

    def test_dead_backend_fails_over_and_flips_health(self):
        with OptimizerServer(shards=1, workers=2) as server_a:
            with OptimizerServer(shards=1, workers=2) as server_b:
                servers = {
                    f"127.0.0.1:{server_a.port}": server_a,
                    f"127.0.0.1:{server_b.port}": server_b,
                }
                with FleetRouter(list(servers)) as router:
                    workload = build_ec2(1, 3, 1)
                    digest = constraints_digest(workload.catalog.constraints())
                    primary = router.ring.route(digest)
                    servers[primary].stop()  # kill exactly the primary
                    with OptimizerClient(port=router.port) as client:
                        response = client.request(
                            dict(EC2_REQUEST, id="x1"), timeout=JOIN_TIMEOUT
                        )
                    stats = router.stats()
                    ready, detail = router.readiness()
        assert response["status"] == "ok"  # the replica answered
        assert stats.failovers >= 1
        assert stats.routed == 1
        assert stats.backends_healthy == 1
        assert ready and detail["healthy"] == 1

    def test_no_backend_alive_is_a_typed_error_and_not_ready(self):
        server = OptimizerServer(shards=1, workers=1)
        name = f"127.0.0.1:{server.port}"
        server.stop()
        with FleetRouter([name]) as router:
            with OptimizerClient(port=router.port) as client:
                response = client.request(dict(EC2_REQUEST, id="x1"), timeout=JOIN_TIMEOUT)
            ready, detail = router.readiness()
            stats = router.stats()
        assert response["status"] == "error"
        assert not ready and detail["reason"] == "no healthy backends"
        assert stats.backends_healthy == 0


# ---------------------------------------------------------------------- #
# the sync exchange: digest-guarded cross-process cache/memo movement
# ---------------------------------------------------------------------- #
class TestSyncExchange:
    def test_digest_mismatch_is_rejected_whole(self):
        workload = build_ec2(1, 3, 1)
        with OptimizerService(shards=1) as source:
            source.submit(
                workload.query, catalog=workload.catalog
            ).result().raise_for_error()
            exported = source.export_sync()
        assert exported  # the warm session produced deltas
        tampered = [dict(entry, digest="0" * 64) for entry in exported]
        with OptimizerService(shards=1) as target:
            merged, rejected = target.merge_sync(tampered)
            assert (merged, rejected) == (0, len(tampered))
            # Malformed payloads are rejected the same way, not raised.
            merged, rejected = target.merge_sync([{"digest": "x", "data": "!!"}])
            assert (merged, rejected) == (0, 1)
            # The untampered export merges cleanly into the same service.
            merged, rejected = target.merge_sync(exported)
            assert (merged, rejected) == (len(exported), 0)
            stats = target.stats()
        assert stats.sync_rejected == len(tampered) + 1
        assert stats.sync_sessions_merged == len(exported)

    def test_exports_are_incremental(self):
        workload = build_ec2(1, 3, 1)
        with OptimizerService(shards=1) as service:
            service.submit(
                workload.query, catalog=workload.catalog
            ).result().raise_for_error()
            assert service.export_sync()  # first export ships the deltas
            assert service.export_sync() == []  # nothing new since

    def test_exchange_round_lets_the_peer_serve_warm(self):
        """A catalog computed only on backend A: after one exchange round,
        backend B's *first* request of it reuses A's chase fixpoints and
        containment verdicts — same plans, measurably warmer."""
        record = dict(EC2_REQUEST, id="warm")
        with OptimizerServer(shards=1, workers=2) as server_a:
            with OptimizerServer(shards=1, workers=2) as server_b:
                names = [f"127.0.0.1:{server_a.port}", f"127.0.0.1:{server_b.port}"]
                clients = {}
                try:
                    for name in names:
                        host, port = parse_backend(name)
                        clients[name] = OptimizerClient(host=host, port=port)
                    cold = clients[names[0]].request(
                        dict(record), timeout=JOIN_TIMEOUT
                    )
                    assert cold["status"] == "ok"
                    exchanger = SyncExchanger(names, clients.__getitem__)
                    assert exchanger.run_once(timeout=JOIN_TIMEOUT) >= 1
                    warm = clients[names[1]].request(
                        dict(record), timeout=JOIN_TIMEOUT
                    )
                    stats_b = server_b.service.stats()
                finally:
                    for client in clients.values():
                        client.close()
        assert warm["status"] == "ok"
        assert warm["plan_digests"] == cold["plan_digests"]  # the differential bar
        # B never computed this catalog, yet its first serve hit state that
        # only A's run could have produced.
        assert warm["memo_hits"] > cold["memo_hits"]
        assert warm["cache_hits"] > cold["cache_hits"]
        assert stats_b.sync_merges >= 1
        assert stats_b.sync_sessions_merged >= 1
        assert exchanger.totals()[0] == 1

    def test_unreachable_backend_is_skipped_and_reported(self):
        health = {}
        with OptimizerServer(shards=1, workers=1) as server:
            live = f"127.0.0.1:{server.port}"
            dead_server = OptimizerServer(shards=1, workers=1)
            dead = f"127.0.0.1:{dead_server.port}"
            dead_server.stop()
            clients = {}

            def client_for(name):
                if name not in clients:
                    host, port = parse_backend(name)
                    clients[name] = OptimizerClient(host=host, port=port)
                return clients[name]

            try:
                exchanger = SyncExchanger(
                    [live, dead],
                    client_for,
                    on_health=lambda name, healthy: health.__setitem__(name, healthy),
                )
                exchanger.run_once(timeout=JOIN_TIMEOUT)
            finally:
                for client in clients.values():
                    client.close()
        assert health[dead] is False
        assert health[live] is True
        assert exchanger.failures >= 1

    def test_sync_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            SyncExchanger(["a:1"], lambda name: None, interval=0)


# ---------------------------------------------------------------------- #
# the shared snapshot store
# ---------------------------------------------------------------------- #
class TestSnapshotStore:
    @staticmethod
    def _warm_service(service):
        digests = []
        for name, params, strategy in MIX[:2]:
            builder, _ = WORKLOAD_BUILDERS[name]
            workload = builder(**params)
            response = service.submit(
                workload.query, strategy=strategy, catalog=workload.catalog
            ).result()
            response.raise_for_error()
            digests.append(constraints_digest(workload.catalog.constraints()))
        return digests

    def test_store_files_are_keyed_by_structural_digest(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        with OptimizerService(shards=1) as service:
            digests = self._warm_service(service)
            saved = StoreSaver(service, store).save_caches("ignored-path")
        assert saved == len(digests)
        assert store.files() == sorted(store.path_for(digest) for digest in digests)

    def test_fresh_process_boots_warm_from_the_store(self, tmp_path):
        """The scale-up contract: a brand-new service (different shard
        count, nothing in common with the saver) restores every session any
        fleet member stored."""
        store = SnapshotStore(tmp_path / "store")
        with OptimizerService(shards=1) as saver:
            self._warm_service(saver)
            StoreSaver(saver, store).save_caches("ignored-path")
        with OptimizerService(shards=2) as fresh:
            restored, failures = store.restore(fresh)
            assert (restored, failures) == (2, 0)
            assert fresh.stats().sessions_restored == 2
            # The restored state actually serves: warm hits on first contact.
            name, params, strategy = MIX[0]
            builder, _ = WORKLOAD_BUILDERS[name]
            workload = builder(**params)
            response = fresh.submit(
                workload.query, strategy=strategy, catalog=workload.catalog
            ).result()
            response.raise_for_error()
            assert fresh.stats().cache_hits > 0

    def test_corrupt_file_degrades_that_catalog_only(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        with OptimizerService(shards=1) as saver:
            self._warm_service(saver)
            StoreSaver(saver, store).save_caches("ignored-path")
        victim = store.files()[0]
        with open(victim, "r+b") as handle:
            handle.write(b"garbage-not-a-snapshot")
        with OptimizerService(shards=1) as fresh:
            restored, failures = store.restore(fresh)
            stats = fresh.stats()
        assert (restored, failures) == (1, 1)
        assert stats.recoveries == 1  # counted, never a boot failure

    def test_snapshot_manager_drives_the_store(self, tmp_path):
        """SnapshotManager's periodic/SIGUSR1/drain machinery needs no
        changes: the StoreSaver facade routes its saves into the store."""
        store = SnapshotStore(tmp_path / "store")
        with OptimizerService(shards=1) as service:
            digests = self._warm_service(service)
            manager = SnapshotManager(StoreSaver(service, store), store.root)
            assert manager.save() == len(digests)
            assert manager.snapshots_written == 1
        assert len(store.files()) == len(digests)
