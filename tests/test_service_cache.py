"""Long-lived :class:`ChaseCache` behaviour: LRU bounds and concurrent sharing.

Satellite coverage for the serving PR: once caches outlive a single optimize
call they need (a) a bound — the LRU ``max_entries`` knob with eviction
counters — and (b) safe concurrent sharing: interleaved ``merge_exported`` /
``export_since`` / ``chase`` calls from multiple service requests must never
lose entries and must never store a truncated (timed-out) fixpoint.
"""

import threading
import time

import pytest

from repro.chase.chase import chase
from repro.chase.implication import ChaseCache, ChaseCacheRegistry, constraint_signature
from repro.errors import ChaseTimeout
from repro.workloads import build_ec1, build_ec2


def _workload_cache(build=build_ec2, args=(1, 3, 1), **kwargs):
    workload = build(*args)
    constraints = list(workload.catalog.constraints())
    return workload, constraints, ChaseCache(constraints, **kwargs)


class TestLRUBound:
    def test_unbounded_by_default(self):
        workload, constraints, cache = _workload_cache()
        assert cache.max_entries is None
        cache.chase(workload.query)
        assert cache.evictions == 0
        assert len(cache) == 1

    def test_rejects_non_positive_bounds(self):
        _, constraints, _ = _workload_cache()
        with pytest.raises(ValueError):
            ChaseCache(constraints, max_entries=0)

    def test_evicts_least_recently_used(self):
        workload, constraints, cache = _workload_cache(max_entries=2)
        universal = cache.chase(workload.query)
        # Chase three distinct subqueries of the universal plan through the
        # bounded cache; only two fixpoints may survive.
        variables = sorted(universal.variable_set)
        subqueries = []
        for drop in variables:
            subquery = universal.restrict_to(frozenset(universal.variable_set) - {drop})
            if subquery is not None:
                subqueries.append(subquery)
            if len(subqueries) == 3:
                break
        assert len(subqueries) == 3, "workload too small for the eviction scenario"
        for subquery in subqueries:
            cache.chase(subquery)
        assert len(cache) == 2
        assert cache.evictions >= 2  # the original chase + the oldest subquery

    def test_hit_refreshes_recency(self):
        workload, constraints, cache = _workload_cache(max_entries=2)
        universal = cache.chase(workload.query)
        keep_key = workload.query.signature()
        variables = sorted(universal.variable_set)
        filled = 0
        for drop in variables:
            subquery = universal.restrict_to(frozenset(universal.variable_set) - {drop})
            if subquery is None:
                continue
            cache.chase(workload.query)  # refresh the entry we want to keep
            cache.chase(subquery)
            filled += 1
            if filled == 2:
                break
        assert filled == 2
        # The refreshed entry survived both insertions; hits keep it warm.
        assert keep_key in cache._cache

    def test_eviction_counters_flow_through_registry(self):
        workload = build_ec2(1, 3, 2)
        registry = ChaseCacheRegistry(max_entries=1)
        constraints = list(workload.catalog.constraints())
        cache = registry.for_constraints(constraints)
        universal = cache.chase(workload.query)
        subquery = universal.restrict_to(
            frozenset(universal.variable_set) - {sorted(universal.variable_set)[0]}
        )
        if subquery is not None:
            cache.chase(subquery)
        stats = registry.stats()
        assert stats["evictions"] >= 1
        assert stats["entries"] <= 1


class TestTruncatedFixpointsNeverCached:
    def test_timed_out_chase_is_not_stored(self):
        workload, constraints, cache = _workload_cache(build=build_ec2, args=(2, 3, 1))
        expired = time.perf_counter() - 1.0
        with pytest.raises(ChaseTimeout):
            cache.chase(workload.query, deadline=expired)
        assert len(cache) == 0
        assert workload.query.signature() not in cache._cache
        # A later call with budget redoes the chase and caches the real fixpoint.
        full = cache.chase(workload.query)
        reference = chase(workload.query, constraints).query
        assert full.signature() == reference.signature()
        assert len(cache) == 1

    def test_chase_result_returns_partial_without_storing(self):
        workload, constraints, cache = _workload_cache(build=build_ec2, args=(2, 3, 1))
        expired = time.perf_counter() - 1.0
        result = cache.chase_result(workload.query, deadline=expired)
        assert result.timed_out
        assert len(cache) == 0


class TestConcurrentSharing:
    """Interleaved merge/export/chase from many threads loses nothing."""

    def test_merge_and_export_race(self):
        _, constraints, shared = _workload_cache()
        # Pre-compute disjoint entry batches (signature -> fixpoint) from
        # worker-local caches, as the wave engine's workers would.
        workload2 = build_ec2(1, 4, 1)
        donor = ChaseCache(constraints)
        universal = donor.chase(workload2.query)
        keys = sorted(universal.variable_set)
        batches = []
        for drop in keys:
            subquery = universal.restrict_to(frozenset(universal.variable_set) - {drop})
            if subquery is not None:
                local = ChaseCache(constraints)
                local.chase(subquery)
                batches.append(local.export_since(0))
        assert len(batches) >= 3
        expected_keys = set()
        for batch in batches:
            expected_keys.update(batch)

        errors = []
        exported = []

        def merger(batch):
            try:
                for _ in range(50):
                    shared.merge_exported(batch, hits=1, misses=1)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def exporter():
            try:
                for _ in range(100):
                    marker = shared.snapshot()
                    exported.append(shared.export_since(marker))
                    shared.export_since(0)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=merger, args=(batch,)) for batch in batches]
        threads += [threading.Thread(target=exporter) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        # No entry was lost and every stored fixpoint is the full one.
        assert expected_keys <= set(shared._cache)
        full_export = shared.export_since(0)
        for batch in batches:
            for key, value in batch.items():
                assert full_export[key].signature() == value.signature()

    def test_concurrent_chases_on_a_shared_cache(self):
        workload, constraints, shared = _workload_cache(build=build_ec2, args=(1, 3, 2))
        reference = chase(workload.query, constraints).query
        results = []
        errors = []

        def worker():
            try:
                for _ in range(5):
                    results.append(shared.chase(workload.query))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(results) == 20
        assert all(result.signature() == reference.signature() for result in results)
        assert shared.hits + shared.misses == 20
        assert len(shared) == 1

    def test_bounded_merge_respects_the_cap(self):
        workload = build_ec2(1, 3, 2)
        constraints = list(workload.catalog.constraints())
        donor = ChaseCache(constraints)
        universal = donor.chase(workload.query)
        for drop in sorted(universal.variable_set):
            subquery = universal.restrict_to(frozenset(universal.variable_set) - {drop})
            if subquery is not None:
                donor.chase(subquery)
        bounded = ChaseCache(constraints, max_entries=2)
        bounded.merge(donor)
        assert len(bounded) <= 2
        assert bounded.evictions >= len(donor) - 2


class TestRegistry:
    def test_caches_are_keyed_by_exact_constraint_set(self):
        ec2 = build_ec2(1, 3, 1)
        ec1 = build_ec1(2, 0)
        registry = ChaseCacheRegistry()
        first = registry.for_constraints(ec2.catalog.constraints())
        again = registry.for_constraints(list(ec2.catalog.constraints()))
        other = registry.for_constraints(ec1.catalog.constraints())
        assert first is again
        assert first is not other
        assert len(registry) == 2

    def test_signature_ignores_order_and_duplicates_nothing(self):
        ec2 = build_ec2(1, 3, 1)
        constraints = list(ec2.catalog.constraints())
        assert constraint_signature(constraints) == constraint_signature(
            sorted(constraints, key=lambda dep: dep.name, reverse=True)
        )
