"""Differential harness: every serving path produces the same plan sets.

Three ways to optimize the same request:

(a) **single-shot** — a fresh :class:`~repro.chase.optimizer.CBOptimizer`
    per request (the library-call reference);
(b) **in-process service** — :class:`~repro.service.OptimizerService` with
    warm caches, containment memos and cross-query wave batching;
(c) **socket** — the same service behind
    :class:`~repro.service.OptimizerServer`, driven through
    :class:`~repro.service.OptimizerClient` over TCP.

All three must produce *identical plan-set signatures* for every request —
the protocol's :func:`~repro.service.protocol.plan_digest` — including on
warm repeats (second round hits chase caches and memos), under zero-budget
timeouts (every path falls back to the original query deterministically)
and under aggressive cache/memo/session eviction.  This is the lockdown
that makes later scaling PRs cheap to trust: any cache-soundness or
protocol bug shows up as a digest mismatch here.
"""

import pytest

from repro.service import OptimizerClient, OptimizerServer, OptimizerService
from repro.service.protocol import WORKLOAD_BUILDERS, plan_digest

#: (workload, params, strategy) — the request mix, covering every workload
#: family and every strategy.  Each round repeats the whole mix, so rounds
#: after the first run against warm caches and memos.
MIX = [
    ("ec1", {"relations": 2, "secondary_indexes": 1}, "fb"),
    ("ec1", {"relations": 3, "secondary_indexes": 0}, "ocs"),
    ("ec2", {"stars": 1, "corners": 3, "views": 1}, "fb"),
    ("ec2", {"stars": 1, "corners": 3, "views": 2}, "oqf"),
    ("ec3", {"classes": 3, "asrs": 0}, "fb"),
    ("ec3", {"classes": 3, "asrs": 1}, "ocs"),
]


def _requests(rounds=2, timeout=None):
    """Materialise ``rounds`` interleaved copies of the mix as workloads."""
    requests = []
    for _ in range(rounds):
        for name, params, strategy in MIX:
            builder, _ = WORKLOAD_BUILDERS[name]
            requests.append((builder(**params), strategy, timeout))
    return requests


def _single_shot_digests(requests):
    digests = []
    for workload, strategy, timeout in requests:
        result = workload.optimizer(timeout=timeout).optimize(workload.query, strategy=strategy)
        assert result.plan_count >= 1
        digests.append(plan_digest(result.plans))
    return digests


def _service_digests(requests, **service_kwargs):
    digests = []
    with OptimizerService(**service_kwargs) as service:
        futures = [
            service.submit(
                workload.query, strategy=strategy, catalog=workload.catalog, timeout=timeout
            )
            for workload, strategy, timeout in requests
        ]
        for future in futures:
            response = future.result()
            assert response.ok, response.error
            assert response.result.plan_count >= 1
            digests.append(plan_digest(response.result.plans))
    return digests


def _socket_digests(requests, **service_kwargs):
    records = []
    for index, (workload, strategy, timeout) in enumerate(requests):
        record = {
            "id": f"d{index}",
            "workload": workload.name.lower(),
            "params": dict(workload.params),
            "strategy": strategy,
        }
        if timeout is not None:
            record["timeout"] = timeout
        records.append(record)
    with OptimizerServer(**service_kwargs) as server:
        with OptimizerClient(port=server.port) as client:
            responses = client.request_many(records, timeout=300)
    digests = []
    for record, response in zip(records, responses):
        assert response["id"] == record["id"]
        assert response["status"] == "ok", response
        assert response["plan_count"] >= 1
        digests.append(response["plan_digests"])
    return digests


class TestDifferentialPaths:
    def test_all_three_paths_agree(self):
        """Cold + warm rounds: single-shot == service == socket, per request."""
        requests = _requests(rounds=2)
        reference = _single_shot_digests(requests)
        service = _service_digests(requests, shards=2, workers=2)
        socket_path = _socket_digests(requests, shards=2, workers=2)
        assert service == reference
        assert socket_path == reference

    def test_paths_agree_under_zero_budget_timeouts(self):
        """timeout=0 falls back deterministically on every path, >= 1 plan."""
        requests = _requests(rounds=2, timeout=0.0)
        reference = _single_shot_digests(requests)
        service = _service_digests(requests, shards=2, workers=2)
        socket_path = _socket_digests(requests, shards=2, workers=2)
        assert service == reference
        assert socket_path == reference

    def test_paths_agree_under_aggressive_eviction(self):
        """Tiny cache/memo/session LRU bounds never change a plan set."""
        requests = _requests(rounds=2)
        reference = _single_shot_digests(requests)
        bounds = dict(
            shards=1,
            workers=2,
            max_cache_entries=2,
            max_memo_entries=2,
            max_sessions=2,
        )
        assert _service_digests(requests, **bounds) == reference
        assert _socket_digests(requests, **bounds) == reference

    def test_warm_round_actually_hits_memo_and_cache(self):
        """The differential rounds exercise what they claim: warm reuse."""
        requests = _requests(rounds=2)
        with OptimizerService(shards=2, workers=2) as service:
            for workload, strategy, timeout in requests:
                service.submit(
                    workload.query, strategy=strategy, catalog=workload.catalog, timeout=timeout
                ).result().raise_for_error()
            stats = service.stats()
        assert stats.cache_hits > 0
        assert stats.memo_hits > 0
        assert stats.memo_hit_rate > 0.2  # round 2 re-decides round 1's pairs


class TestDifferentialMixedStream:
    @pytest.mark.parametrize("timeout", [None, 0.0])
    def test_interleaved_timeouts_and_strategies_over_socket(self, timeout):
        """A stream mixing budgets per request still matches single-shot."""
        requests = []
        for index, (workload, strategy, _) in enumerate(_requests(rounds=1)):
            # Alternate: even requests get the parametrised budget, odd run free.
            requests.append((workload, strategy, timeout if index % 2 == 0 else None))
        reference = _single_shot_digests(requests)
        assert _socket_digests(requests, shards=2, workers=2) == reference
