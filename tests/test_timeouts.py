"""End-to-end timeout semantics: budgets are honoured and plans never vanish.

The documented invariants (see ``OptimizationResult``):

* with a finite ``timeout``, fb/oqf/ocs optimize calls finish within the
  budget plus a small epsilon — the chase phase included, since the deadline
  is threaded into :func:`repro.chase.chase.chase` as well;
* a timed-out run still returns at least one plan (falling back to the
  original query / fragment queries), flagged with ``timed_out=True``.
"""

import time

import pytest

from repro.chase.backchase import FullBackchase, ParallelBackchase
from repro.chase.chase import chase, deadline_passed
from repro.chase.implication import ChaseCache
from repro.errors import ChaseTimeout
from repro.service import OptimizerClient, OptimizerServer, OptimizerService
from repro.workloads.ec2 import build_ec2

#: Grace allowed on top of the budget: deadline checks sit between dependency
#: checks / lattice nodes, and the engines still collapse bindings and dedupe
#: the partial plan list after expiry.
EPSILON = 1.0


class TestOptimizerBudgets:
    @pytest.mark.parametrize("strategy", ["fb", "oqf", "ocs"])
    def test_tiny_budget_partial_plans_within_epsilon(self, strategy):
        workload = build_ec2(2, 4, 2)  # ~5s un-timeboxed; must cut off at 50ms
        optimizer = workload.optimizer(timeout=0.05)
        start = time.perf_counter()
        result = optimizer.optimize(workload.query, strategy=strategy)
        elapsed = time.perf_counter() - start
        assert result.timed_out
        assert result.plan_count >= 1
        assert elapsed <= 0.05 + EPSILON

    @pytest.mark.parametrize("strategy", ["fb", "oqf", "ocs"])
    def test_zero_budget_falls_back_to_original(self, strategy):
        workload = build_ec2(1, 3, 1)
        result = workload.optimizer(timeout=0.0).optimize(workload.query, strategy=strategy)
        assert result.timed_out
        assert result.plan_count >= 1
        # The fallback covers the original query: some plan scans exactly the
        # original's collections (for oqf, reassembled from the fragments).
        scans = {frozenset(plan.collections_used()) for plan in result.plans}
        assert frozenset(workload.query.collections_used()) in scans

    def test_parallel_backchase_honours_budget(self):
        workload = build_ec2(2, 4, 2)
        constraints = workload.catalog.constraints()
        universal = chase(workload.query, constraints).query
        for executor in ("serial", "threads", "processes"):
            engine = ParallelBackchase(
                workload.query, constraints, timeout=0.05, executor=executor, workers=2
            )
            start = time.perf_counter()
            result = engine.run(universal)
            elapsed = time.perf_counter() - start
            assert result.timed_out
            # Process pool startup is not part of the search but is billed
            # against wall-clock; allow it the same grace.
            assert elapsed <= 0.05 + 2 * EPSILON

    def test_untimed_runs_do_not_time_out(self):
        workload = build_ec2(1, 3, 1)
        result = workload.optimizer().optimize(workload.query, strategy="fb")
        assert not result.timed_out


class TestChaseDeadline:
    def test_expired_deadline_short_circuits(self):
        workload = build_ec2(2, 4, 2)
        result = chase(
            workload.query, workload.catalog.constraints(), deadline=time.perf_counter()
        )
        assert result.timed_out
        assert result.applied == 0

    def test_no_deadline_reaches_fixpoint(self):
        workload = build_ec2(1, 3, 1)
        result = chase(workload.query, workload.catalog.constraints())
        assert not result.timed_out

    def test_restart_engine_honours_deadline(self):
        workload = build_ec2(2, 4, 2)
        result = chase(
            workload.query,
            workload.catalog.constraints(),
            incremental=False,
            deadline=time.perf_counter(),
        )
        assert result.timed_out

    def test_deadline_passed_helper(self):
        assert not deadline_passed(None)
        assert not deadline_passed(time.perf_counter() + 60)
        assert deadline_passed(time.perf_counter() - 1)

    def test_cache_raises_and_does_not_poison(self):
        workload = build_ec2(2, 4, 2)
        cache = ChaseCache(workload.catalog.constraints())
        with pytest.raises(ChaseTimeout):
            cache.chase(workload.query, deadline=time.perf_counter())
        assert len(cache) == 0  # the truncated result was not cached
        # With a fresh (unlimited) budget the same query chases fine.
        chased = cache.chase(workload.query)
        assert chased.size() >= workload.query.size()

    def test_full_backchase_timeout_flag(self):
        workload = build_ec2(2, 4, 2)
        constraints = workload.catalog.constraints()
        universal = chase(workload.query, constraints).query
        result = FullBackchase(workload.query, constraints, timeout=0.02).run(universal)
        assert result.timed_out
        assert result.elapsed <= 0.02 + EPSILON


class TestServiceTimeouts:
    """Timed-out requests through the serving paths still carry >= 1 plan.

    The regression this pins down: a warm session answers the chase phase
    from its cache (hit, zero cost), so the *backchase* is what runs out of
    budget — a timed-out response must still fall back to >= 1 plan exactly
    like the cold single-shot path, on the in-process service and through
    the socket front end alike.
    """

    @pytest.mark.parametrize("strategy", ["fb", "oqf", "ocs"])
    def test_in_process_service_zero_budget_keeps_plans(self, strategy):
        workload = build_ec2(1, 3, 1)
        with OptimizerService(shards=1, workers=1) as service:
            # Warm the session first (no timeout), then hit it with a zero
            # budget: the chase is a cache hit, the backchase times out.
            service.submit(
                workload.query, strategy=strategy, catalog=workload.catalog
            ).result().raise_for_error()
            for _ in range(2):
                response = service.submit(
                    workload.query,
                    strategy=strategy,
                    catalog=workload.catalog,
                    timeout=0.0,
                ).result()
                assert response.ok, response.error
                assert response.result.timed_out
                assert response.result.plan_count >= 1

    @pytest.mark.parametrize("strategy", ["fb", "oqf", "ocs"])
    def test_socket_server_zero_budget_keeps_plans(self, strategy):
        request = {
            "workload": "ec2",
            "params": {"stars": 1, "corners": 3, "views": 1},
            "strategy": strategy,
            "timeout": 0.0,
        }
        with OptimizerServer(shards=1, workers=1) as server:
            with OptimizerClient(port=server.port) as client:
                # Cold then warm: both zero-budget responses must carry plans.
                for _ in range(2):
                    record = client.request(dict(request), timeout=60)
                    assert record["status"] == "ok", record
                    assert record["timed_out"] is True
                    assert record["plan_count"] >= 1
                    assert record["plan_digests"]

    def test_default_timeout_is_applied_by_the_server(self):
        """A server-side default budget reaches requests that carry none."""
        request = {
            "workload": "ec2",
            "params": {"stars": 1, "corners": 3, "views": 1},
            "strategy": "fb",
        }
        with OptimizerServer(shards=1, workers=1, default_timeout=0.0) as server:
            with OptimizerClient(port=server.port) as client:
                record = client.request(request, timeout=60)
        assert record["status"] == "ok", record
        assert record["timed_out"] is True
        assert record["plan_count"] >= 1
