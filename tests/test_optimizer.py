"""Integration tests for the C&B optimizer: motivating examples and strategies."""

import pytest

from repro.chase.implication import equivalent_under
from repro.chase.optimizer import CBOptimizer
from repro.cq.query import PCQuery
from repro.schema.catalog import Catalog
from repro.workloads.ec1 import build_ec1, expected_plan_count
from repro.workloads.ec2 import build_ec2
from repro.workloads.ec3 import build_ec3


def q(text):
    return PCQuery.parse(text).validate()


class TestMotivatingExample21:
    """Example 2.1: index introduction enabled by a referential integrity constraint."""

    @pytest.fixture
    def catalog(self):
        catalog = Catalog()
        catalog.add_relation("R", ["A", "B", "C", "E"])
        catalog.add_relation("S", ["A"])
        catalog.add_foreign_key("R", ["A"], "S", ["A"])
        catalog.add_primary_index("I", "R", ["A", "B", "C"])
        return catalog

    @pytest.fixture
    def query(self):
        return q("select struct(A: r.A, E: r.E) from R r where r.B = 1 and r.C = 2")

    def test_index_plan_is_generated(self, catalog, query):
        result = CBOptimizer(catalog).optimize(query, strategy="fb")
        scans = [plan.collections_used() for plan in result.plans]
        # A plan that answers the query from the composite index alone.
        assert any(used == {"I"} for used in scans)

    def test_original_scan_plan_is_also_generated(self, catalog, query):
        result = CBOptimizer(catalog).optimize(query, strategy="fb")
        assert any(plan.collections_used() == {"R"} for plan in result.plans)

    def test_all_plans_equivalent_under_constraints(self, catalog, query):
        constraints = catalog.constraints()
        result = CBOptimizer(catalog).optimize(query, strategy="fb")
        for plan in result.plans:
            assert equivalent_under(plan.query, query, constraints)

    def test_rewrite_with_s_join_requires_the_foreign_key(self, catalog, query):
        # The crux of Example 2.1: Q' (the extra join with S) is equivalent to
        # Q only because of the referential integrity constraint.
        rewritten = q(
            "select struct(A: r.A, E: r.E) from R r, S s "
            "where r.B = 1 and r.C = 2 and r.A = s.A"
        )
        assert equivalent_under(rewritten, query, catalog.constraints())
        no_fk = Catalog()
        no_fk.add_relation("R", ["A", "B", "C", "E"])
        no_fk.add_relation("S", ["A"])
        assert not equivalent_under(rewritten, query, no_fk.constraints())


class TestMotivatingExample22:
    """Example 2.2: rewriting with views enabled by a key constraint."""

    def _catalog(self, with_key):
        catalog = Catalog()
        for star in (1, 2):
            catalog.add_relation(f"R{star}", ["K", "F", "A1", "A2"], key=["K"])
            if with_key:
                catalog.add_key(f"R{star}", ["K"])
            for corner in (1, 2):
                catalog.add_relation(f"S{star}{corner}", ["A", "B"])
            catalog.add_materialized_view(
                f"V{star}",
                q(
                    f"select struct(K: r.K, B1: s1.B, B2: s2.B) "
                    f"from R{star} r, S{star}1 s1, S{star}2 s2 "
                    f"where r.A1 = s1.A and r.A2 = s2.A"
                ),
            )
        return catalog

    def _query(self):
        return q(
            "select struct(B11: s11.B, B12: s12.B, B21: s21.B, B22: s22.B) "
            "from R1 r1, S11 s11, S12 s12, R2 r2, S21 s21, S22 s22 "
            "where r1.F = r2.K and r1.A1 = s11.A and r1.A2 = s12.A "
            "and r2.A1 = s21.A and r2.A2 = s22.A"
        )

    def test_with_key_both_views_usable(self):
        result = CBOptimizer(self._catalog(with_key=True)).optimize(self._query(), "fb")
        plans = [plan.collections_used() for plan in result.plans]
        # Q'' from the paper: both views used, star 1 keeps R1 for the F link.
        assert any({"V1", "V2", "R1"} <= used and "S11" not in used for used in plans)
        assert result.plan_count == 4

    def test_without_key_v1_cannot_replace_star_one(self):
        result = CBOptimizer(self._catalog(with_key=False)).optimize(self._query(), "fb")
        plans = [plan.collections_used() for plan in result.plans]
        assert not any("V1" in used and "S11" not in used for used in plans)
        # V2 still replaces the second star (no attribute of R2 is needed
        # beyond what the view exposes).
        assert any("V2" in used for used in plans)


class TestStrategiesOnWorkloads:
    def test_ec1_all_strategies_complete_small(self):
        workload = build_ec1(relations=2, secondary_indexes=0)
        optimizer = workload.optimizer()
        expected = expected_plan_count(2, 0)
        for strategy in ("fb", "oqf", "ocs"):
            assert optimizer.optimize(workload.query, strategy).plan_count == expected

    def test_ec1_with_secondary_index(self):
        workload = build_ec1(relations=2, secondary_indexes=1)
        optimizer = workload.optimizer()
        assert optimizer.optimize(workload.query, "fb").plan_count == expected_plan_count(2, 1)
        assert optimizer.optimize(workload.query, "oqf").plan_count == expected_plan_count(2, 1)

    def test_ec2_paper_plan_counts_small_rows(self):
        for stars, corners, views, complete, ocs in [(1, 3, 1, 2, 2), (1, 3, 2, 4, 3)]:
            workload = build_ec2(stars, corners, views)
            optimizer = workload.optimizer()
            assert optimizer.optimize(workload.query, "fb").plan_count == complete
            assert optimizer.optimize(workload.query, "oqf").plan_count == complete
            assert optimizer.optimize(workload.query, "ocs").plan_count == ocs

    def test_ec2_oqf_matches_fb_plan_sets(self):
        workload = build_ec2(stars=2, corners=2, views=1)
        optimizer = workload.optimizer()
        fb = optimizer.optimize(workload.query, "fb")
        oqf = optimizer.optimize(workload.query, "oqf")
        assert fb.plan_count == oqf.plan_count
        fb_scans = {frozenset(plan.collections_used()) for plan in fb.plans}
        oqf_scans = {frozenset(plan.collections_used()) for plan in oqf.plans}
        assert fb_scans == oqf_scans

    def test_ec3_flip_plans(self):
        workload = build_ec3(classes=3)
        optimizer = workload.optimizer()
        fb = optimizer.optimize(workload.query, "fb")
        ocs = optimizer.optimize(workload.query, "ocs")
        assert fb.plan_count == 4
        assert ocs.plan_count == 4

    def test_ec3_with_asr_generates_asr_plan(self):
        workload = build_ec3(classes=3, asrs=1)
        result = workload.optimizer().optimize(workload.query, "fb")
        assert any("ASR1" in plan.collections_used() for plan in result.plans)

    def test_all_plans_always_include_an_original_equivalent(self):
        workload = build_ec2(stars=1, corners=3, views=1)
        optimizer = workload.optimizer()
        result = optimizer.optimize(workload.query, "fb")
        original_scans = workload.query.collections_used()
        assert any(plan.collections_used() == original_scans for plan in result.plans)


class TestOptimizerAPI:
    def test_unknown_strategy_rejected(self, star_catalog, star_query):
        with pytest.raises(ValueError):
            CBOptimizer(star_catalog).optimize(star_query, strategy="magic")

    def test_needs_catalog_or_constraints(self):
        with pytest.raises(ValueError):
            CBOptimizer()

    def test_explicit_constraints_override_catalog(self, star_catalog, star_query):
        optimizer = CBOptimizer(star_catalog, constraints=[])
        result = optimizer.optimize(star_query, "fb")
        assert result.plan_count == 1

    def test_result_accounting(self, star_catalog, star_query):
        result = CBOptimizer(star_catalog).optimize(star_query, "fb")
        assert result.total_time == pytest.approx(result.chase_time + result.backchase_time)
        assert result.time_per_plan() > 0
        assert result.universal_plan is not None
        assert len(result.plan_queries()) == result.plan_count

    def test_best_plan_uses_cost_function(self, star_catalog, star_query):
        result = CBOptimizer(star_catalog).optimize(star_query, "fb")
        best = result.best_plan(lambda query: query.size())
        assert best.query.size() == min(plan.query.size() for plan in result.plans)
        assert best.cost == best.query.size()

    def test_optimize_with_strata(self, star_catalog, star_query):
        optimizer = CBOptimizer(star_catalog)
        from repro.chase.stratify import stratify_constraints

        strata = stratify_constraints(star_catalog.constraints())
        result = optimizer.optimize_with_strata(star_query, strata)
        assert result.plan_count == 2
        assert result.stratum_count == len(strata)
