"""Chaos suite: fault injection, supervision, snapshots, retry resilience.

The fault-tolerance contract of the serving layer, pinned down with the
deterministic :class:`~repro.service.faults.FaultInjector`:

* **Typed client failures.**  A malformed response line fails every pending
  future with :class:`~repro.errors.ProtocolError` (never a silently-dead
  reader thread); EOF/reset fails them with
  :class:`~repro.errors.ConnectionLost`.
* **Retry differential.**  With injected server read/write faults, a
  retrying client produces plan digests *identical* to a fault-free run —
  faults cost latency, never answers.
* **Shard supervision.**  A crashed runner resolves its request with a
  typed ``RunnerCrash`` (never a hung future), is replaced, and the gauges
  (``runner_failures``/``runner_restarts``) record it; silently-dead
  runners are restarted by the supervisor sweep.
* **Crash-safe snapshots.**  Corrupt/truncated/bit-flipped/stale/wrong-
  version snapshots are detected and degrade to a *counted* cold start;
  a failed write never harms the previous snapshot (atomic replace).
* **Crash-recovery differential** (subprocess): warm a server with periodic
  snapshotting, ``kill -9`` it, restart from the latest periodic snapshot —
  every plan digest matches a fresh single-shot run and the restart serves
  warm; a corrupted snapshot still boots (exit 0) with ``recoveries == 1``.
"""

import os
import pickle
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.errors import (
    ConnectionLost,
    InjectedCrash,
    InjectedFault,
    ProtocolError,
    ServiceOverloaded,
    SnapshotError,
)
from repro.service import (
    FaultInjector,
    OptimizerClient,
    OptimizerServer,
    OptimizerService,
    SnapshotManager,
)
from repro.service.protocol import overloaded_record, plan_digest
from repro.service.snapshots import read_snapshot
from repro.workloads import build_ec1, build_ec2

#: Generous bound for every join/wait in this module: a hang is a bug.
JOIN_TIMEOUT = 120.0

EC2_REQUEST = {
    "workload": "ec2",
    "params": {"stars": 1, "corners": 3, "views": 1},
    "strategy": "fb",
}


def _single_shot_digests(workload, strategy="fb"):
    result = workload.optimizer().optimize(workload.query, strategy=strategy)
    return plan_digest(result.plans)


# ---------------------------------------------------------------------- #
# the injector itself
# ---------------------------------------------------------------------- #
class TestFaultInjector:
    def test_deterministic_across_instances(self):
        """Same seed, same site, same opportunity -> same decision."""

        def pattern(seed):
            injector = FaultInjector(seed=seed).rule("server.read", probability=0.5)
            fired = []
            for _ in range(64):
                try:
                    injector.maybe_fail("server.read")
                    fired.append(False)
                except InjectedFault:
                    fired.append(True)
            return fired

        assert pattern(7) == pattern(7)
        assert pattern(7) != pattern(8)  # and the seed actually matters

    def test_sites_draw_independent_streams(self):
        """One site's opportunities never shift another site's schedule."""
        lonely = FaultInjector(seed=3).rule("a", probability=0.5)
        noisy = FaultInjector(seed=3).rule("a", probability=0.5).rule("b", probability=0.5)

        def draw(injector, site):
            try:
                injector.maybe_fail(site)
                return False
            except InjectedFault:
                return True

        pattern_lonely = [draw(lonely, "a") for _ in range(32)]
        pattern_noisy = []
        for _ in range(32):
            draw(noisy, "b")  # interleave traffic on the other site
            pattern_noisy.append(draw(noisy, "a"))
        assert pattern_lonely == pattern_noisy

    def test_times_and_after_budget(self):
        injector = FaultInjector().rule("x", times=2, after=1)
        injector.maybe_fail("x")  # warm-up opportunity passes
        for _ in range(2):
            with pytest.raises(InjectedFault):
                injector.maybe_fail("x")
        injector.maybe_fail("x")  # budget exhausted: passes again
        assert injector.counters == {"x": 2}
        assert injector.opportunities == {"x": 4}
        assert injector.total_injected() == 2

    def test_crash_flavour_is_a_base_exception(self):
        injector = FaultInjector().rule("x", crash=True)
        with pytest.raises(InjectedCrash) as excinfo:
            injector.maybe_fail("x", detail="r1")
        assert not isinstance(excinfo.value, Exception)
        assert excinfo.value.site == "x"

    def test_from_spec(self):
        injector = FaultInjector.from_spec(
            "server.write:0.2:3, shard.execute!:1:1, snapshot.read", seed=7
        )
        rules = injector._rules
        assert rules["server.write"].probability == 0.2
        assert rules["server.write"].times == 3
        assert rules["shard.execute"].crash
        assert rules["snapshot.read"].times is None
        with pytest.raises(ValueError):
            FaultInjector.from_spec("a:b:c:d")

    def test_unruled_injector_is_inert(self):
        injector = FaultInjector()
        assert not injector
        injector.maybe_fail("anything")  # no rule, no failure


# ---------------------------------------------------------------------- #
# client: typed protocol failures (satellite: reader thread regression)
# ---------------------------------------------------------------------- #
class _ScriptedServer:
    """Accepts one connection, waits for N request lines, replies verbatim."""

    def __init__(self, payload, expect_lines=1):
        self.payload = payload
        self.expect_lines = expect_lines
        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(1)
        self.port = self.listener.getsockname()[1]
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self):
        conn, _ = self.listener.accept()
        conn.settimeout(JOIN_TIMEOUT)
        try:
            # Hold the reply until every expected request line arrived, so
            # all the client's futures are pending on *this* connection when
            # the scripted garbage lands (the client reconnects on loss).
            received = b""
            while received.count(b"\n") < self.expect_lines:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                received += chunk
            if self.payload:
                conn.sendall(self.payload)
        finally:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()

    def close(self):
        self.listener.close()
        self.thread.join(timeout=JOIN_TIMEOUT)


class TestClientProtocolFailures:
    def test_garbage_line_fails_all_pending_with_protocol_error(self):
        """Regression: a malformed response line used to be skipped, leaving
        the request's future pending forever on a live reader thread."""
        server = _ScriptedServer(b"this is { not json\n", expect_lines=2)
        try:
            with OptimizerClient(port=server.port) as client:
                first = client.submit({"id": "a", "op": "ping"})
                second = client.submit({"id": "b", "op": "ping"})
                with pytest.raises(ProtocolError):
                    first.result(timeout=JOIN_TIMEOUT)
                with pytest.raises(ProtocolError):
                    second.result(timeout=JOIN_TIMEOUT)
        finally:
            server.close()

    def test_non_object_response_is_a_protocol_error(self):
        server = _ScriptedServer(b"[1, 2, 3]\n")
        try:
            with OptimizerClient(port=server.port) as client:
                with pytest.raises(ProtocolError):
                    client.submit({"op": "ping"}).result(timeout=JOIN_TIMEOUT)
        finally:
            server.close()

    def test_eof_fails_pending_with_connection_lost(self):
        server = _ScriptedServer(b"")  # close without answering
        try:
            with OptimizerClient(port=server.port) as client:
                future = client.submit({"op": "ping"})
                with pytest.raises(ConnectionLost) as excinfo:
                    future.result(timeout=JOIN_TIMEOUT)
                # Compat: pre-existing callers catch ConnectionError.
                assert isinstance(excinfo.value, ConnectionError)
        finally:
            server.close()


# ---------------------------------------------------------------------- #
# client: retry / reconnect / deadline
# ---------------------------------------------------------------------- #
class TestClientResilience:
    def test_retry_differential_under_injected_faults(self):
        """Dropped responses and torn reads cost retries, never answers:
        plan digests with faults == plan digests without faults."""
        requests = [
            {"workload": "ec2", "params": {"stars": 1, "corners": 3, "views": 1}},
            {"workload": "ec1", "params": {"relations": 2, "secondary_indexes": 1}},
            {"workload": "ec2", "params": {"stars": 1, "corners": 3, "views": 1},
             "strategy": "oqf"},
        ]

        def run(fault_injector):
            with OptimizerServer(
                shards=1, workers=1, fault_injector=fault_injector
            ) as server:
                with OptimizerClient(
                    port=server.port,
                    retries=6,
                    backoff_base=0.01,
                    backoff_seed=0,
                ) as client:
                    responses = [
                        client.request(dict(record), timeout=JOIN_TIMEOUT)
                        for record in requests
                    ]
                    replays, reconnects = client.replays, client.reconnects
            assert [r["status"] for r in responses] == ["ok"] * len(requests)
            return [r["plan_digests"] for r in responses], replays, reconnects

        clean, clean_replays, _ = run(None)
        faults = (
            FaultInjector(seed=11)
            .rule("server.write", times=2)
            .rule("server.read", times=1, after=1)
        )
        chaotic, replays, reconnects = run(faults)
        assert chaotic == clean
        assert clean_replays == 0
        assert replays >= 3  # every injected fault cost a replay...
        assert reconnects >= 3  # ...over a fresh connection
        assert faults.counters == {"server.write": 2, "server.read": 1}

    def test_overloaded_retry_after_rides_the_protocol(self):
        record = overloaded_record(
            "r1", ServiceOverloaded("busy", shard=0, retry_after=0.25)
        )
        assert record["status"] == "overloaded"
        assert record["retry_after"] == 0.25

    def test_deadline_bounds_the_retry_loop(self):
        server = OptimizerServer(shards=1, workers=1)
        client = OptimizerClient(
            port=server.port,
            retries=50,
            backoff_base=0.05,
            deadline=0.5,
            backoff_seed=0,
        )
        try:
            server.stop()  # every attempt now fails; only the deadline stops us
            start = time.monotonic()
            with pytest.raises((ConnectionError, TimeoutError)):
                client.request(dict(EC2_REQUEST))
            assert time.monotonic() - start < 10.0
        finally:
            client.close()
            server.stop()


# ---------------------------------------------------------------------- #
# shard supervision
# ---------------------------------------------------------------------- #
class TestShardSupervision:
    def test_runner_crash_resolves_request_and_restarts_runner(self):
        workload = build_ec2(1, 3, 1)
        faults = FaultInjector().rule("shard.execute", times=1, crash=True)
        with OptimizerService(
            shards=1, executor="serial", max_inflight=1, fault_injector=faults
        ) as service:
            crashed = service.submit(workload.query, catalog=workload.catalog).result(
                timeout=JOIN_TIMEOUT
            )
            # Never a hung future: the victim resolves with a typed record.
            assert not crashed.ok
            assert crashed.error_type == "RunnerCrash"
            assert "runner died" in crashed.error
            # The shard healed: the next request executes normally and its
            # plans are exactly the single-shot plans.
            healed = service.submit(workload.query, catalog=workload.catalog).result(
                timeout=JOIN_TIMEOUT
            )
            assert healed.ok
            assert plan_digest(healed.result.plans) == _single_shot_digests(workload)
            stats = service.stats()
        assert stats.runner_failures == 1
        assert stats.runner_restarts >= 1
        assert stats.queue_depth == 0  # the crashed request released its slot
        assert stats.requests == 2
        assert stats.errors == 1

    def test_crash_surfaces_as_typed_error_over_the_socket(self):
        faults = FaultInjector().rule("shard.execute", times=1, crash=True)
        with OptimizerServer(
            shards=1, executor="serial", max_inflight=1, fault_injector=faults
        ) as server:
            with OptimizerClient(port=server.port) as client:
                crashed = client.request(dict(EC2_REQUEST), timeout=JOIN_TIMEOUT)
                assert crashed["status"] == "error"
                assert crashed["error_type"] == "RunnerCrash"
                healed = client.request(dict(EC2_REQUEST), timeout=JOIN_TIMEOUT)
                assert healed["status"] == "ok"
                stats = client.stats()
        assert stats["runner_failures"] == 1
        assert stats["runner_restarts"] >= 1

    def test_supervisor_sweep_restarts_a_silently_dead_runner(self):
        from repro.service.shard import _SHUTDOWN, Shard

        shard = Shard(0, executor="serial", max_inflight=2, supervisor_interval=0.05)
        try:
            # Kill one runner without letting it report (it just exits).
            shard._tasks.put(_SHUTDOWN)
            deadline = time.monotonic() + JOIN_TIMEOUT
            while time.monotonic() < deadline:
                with shard._lock:
                    alive = sum(runner.is_alive() for runner in shard._runners)
                if shard.stats().runner_restarts >= 1 and alive == 2:
                    break
                time.sleep(0.02)
            stats = shard.stats()
            assert stats.runner_restarts >= 1
            assert stats.runner_failures == 0  # nothing was in flight
        finally:
            shard.shutdown()


# ---------------------------------------------------------------------- #
# snapshots: corruption, staleness, atomicity
# ---------------------------------------------------------------------- #
def _save_warm_snapshot(path):
    """Run one request through a service and snapshot it; returns digests."""
    workload = build_ec2(1, 3, 1)
    with OptimizerService(shards=1, workers=1) as service:
        response = service.submit(workload.query, catalog=workload.catalog).result(
            timeout=JOIN_TIMEOUT
        )
        response.raise_for_error()
        saved = service.save_caches(path)
    assert saved == 1
    return plan_digest(response.result.plans)


class TestSnapshotRobustness:
    def test_corrupt_snapshot_degrades_to_counted_cold_start(self, tmp_path):
        path = tmp_path / "warm.snap"
        path.write_bytes(b"\x00garbage, definitely not a snapshot")
        workload = build_ec2(1, 3, 1)
        with OptimizerService(shards=1, workers=1) as service:
            restored, error = service.recover_caches(path)
            assert restored == 0
            assert isinstance(error, SnapshotError)
            assert error.reason == "corrupt"
            # The service is perfectly serviceable cold.
            response = service.submit(workload.query, catalog=workload.catalog).result(
                timeout=JOIN_TIMEOUT
            )
            assert response.ok
            stats = service.stats()
        assert stats.recoveries == 1
        assert stats.snapshots_loaded == 0

    def test_truncated_snapshot_is_detected(self, tmp_path):
        path = tmp_path / "warm.snap"
        _save_warm_snapshot(path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(SnapshotError) as excinfo:
            read_snapshot(path)
        assert excinfo.value.reason in ("corrupt", "checksum")

    def test_checksum_catches_a_flipped_payload_bit(self, tmp_path):
        path = tmp_path / "warm.snap"
        _save_warm_snapshot(path)
        envelope = pickle.loads(path.read_bytes())
        payload = bytearray(envelope["payload"])
        payload[len(payload) // 2] ^= 0xFF
        envelope["payload"] = bytes(payload)
        path.write_bytes(pickle.dumps(envelope))
        with pytest.raises(SnapshotError) as excinfo:
            read_snapshot(path)
        assert excinfo.value.reason == "checksum"

    def test_unsupported_version_is_typed(self, tmp_path):
        path = tmp_path / "warm.snap"
        _save_warm_snapshot(path)
        envelope = pickle.loads(path.read_bytes())
        envelope["version"] = 99
        path.write_bytes(pickle.dumps(envelope))
        with pytest.raises(SnapshotError) as excinfo:
            read_snapshot(path)
        assert excinfo.value.reason == "version"

    def test_stale_constraint_signature_skips_the_session(self, tmp_path):
        """A session whose constraints changed since the snapshot was taken
        must cold-start, never serve fixpoints computed under old rules."""
        path = tmp_path / "warm.snap"
        _save_warm_snapshot(path)
        envelope = pickle.loads(path.read_bytes())
        envelope["manifest"]["sessions"][0]["constraints_digest"] = "0" * 64
        path.write_bytes(pickle.dumps(envelope))
        # File-level validation still passes; the session itself is stale.
        _, entries = read_snapshot(path)
        assert [stale for _, stale in entries] == [True]
        with OptimizerService(shards=1, workers=1) as service:
            restored, error = service.recover_caches(path)
            assert (restored, error) == (0, None)
            stats = service.stats()
        assert stats.stale_sessions == 1
        assert stats.recoveries == 0  # the file was fine; only the session was stale

    def test_failed_write_leaves_previous_snapshot_intact(self, tmp_path):
        path = tmp_path / "warm.snap"
        _save_warm_snapshot(path)
        before = path.read_bytes()
        workload = build_ec1(2, 1)
        faults = FaultInjector().rule("snapshot.write")
        with OptimizerService(shards=1, workers=1) as service:
            service.submit(workload.query, catalog=workload.catalog).result(
                timeout=JOIN_TIMEOUT
            )
            with pytest.raises(SnapshotError) as excinfo:
                service.save_caches(path, faults=faults)
        assert excinfo.value.reason == "io"
        assert path.read_bytes() == before  # atomic: old snapshot untouched
        assert not list(tmp_path.glob("*.tmp-*"))  # no litter either

    def test_legacy_v1_snapshot_still_loads(self, tmp_path):
        """PR 5 bare-pickle snapshots (no manifest) remain readable."""
        path = tmp_path / "warm.snap"
        workload = build_ec2(1, 3, 1)
        with OptimizerService(shards=1, workers=1) as saving:
            saving.submit(workload.query, catalog=workload.catalog).result(
                timeout=JOIN_TIMEOUT
            ).raise_for_error()
            sessions = []
            for shard in saving._shards:
                for signature, label, registry, memo in shard.export_sessions():
                    sessions.append(
                        {"signature": signature, "label": label,
                         "registry": registry, "memo": memo}
                    )
        path.write_bytes(pickle.dumps({"version": 1, "sessions": sessions}))
        with OptimizerService(shards=1, workers=1) as restarted:
            assert restarted.load_caches(path) == 1
            response = restarted.submit(
                workload.query, catalog=workload.catalog
            ).result(timeout=JOIN_TIMEOUT)
            assert response.ok
            stats = restarted.stats()
        assert stats.cache_misses == 0  # served warm from the legacy snapshot


class TestSnapshotManager:
    def _warm_service(self):
        workload = build_ec2(1, 3, 1)
        service = OptimizerService(shards=1, workers=1)
        service.submit(workload.query, catalog=workload.catalog).result(
            timeout=JOIN_TIMEOUT
        ).raise_for_error()
        return service

    def test_periodic_loop_snapshots_without_a_shutdown(self, tmp_path):
        path = tmp_path / "warm.snap"
        service = self._warm_service()
        try:
            manager = SnapshotManager(service, path, interval=0.05).start()
            deadline = time.monotonic() + JOIN_TIMEOUT
            while not path.exists() and time.monotonic() < deadline:
                time.sleep(0.01)
            manager.stop(final_save=False)
            assert manager.snapshots_written >= 1
            _, entries = read_snapshot(path)
            assert len(entries) == 1
        finally:
            service.shutdown()

    def test_trigger_without_a_loop_saves_synchronously(self, tmp_path):
        path = tmp_path / "warm.snap"
        service = self._warm_service()
        try:
            manager = SnapshotManager(service, path)  # no interval, no loop
            manager.trigger()
            assert path.exists()
            assert manager.stats()["snapshots_written"] == 1
        finally:
            service.shutdown()

    @pytest.mark.skipif(not hasattr(signal, "SIGUSR1"), reason="needs SIGUSR1")
    def test_sigusr1_triggers_a_snapshot(self, tmp_path):
        path = tmp_path / "warm.snap"
        service = self._warm_service()
        manager = SnapshotManager(service, path)
        try:
            manager.install_signal_handler()
            os.kill(os.getpid(), signal.SIGUSR1)
            deadline = time.monotonic() + JOIN_TIMEOUT
            while not path.exists() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert path.exists()
        finally:
            manager.restore_signal_handler()
            service.shutdown()

    def test_snapshots_while_serving_never_fail_or_tear(self, tmp_path):
        # Regression: sessions are pickled live while runners keep inserting
        # into the caches.  Before the locked-copy __getstate__ fixes, the
        # pickle walk raised "OrderedDict mutated during iteration" — an
        # exception SnapshotManager.save() did not catch, so the periodic
        # loop thread died silently and no snapshot was ever taken again.
        path = tmp_path / "warm.snap"
        mixes = [build_ec1(2, 1), build_ec2(1, 3, 1), build_ec1(3, 0)]
        with OptimizerService(shards=1, workers=2, max_inflight=4) as service:
            stop = threading.Event()
            failures = []

            def snapshot_hammer():
                while not stop.is_set():
                    try:
                        service.save_caches(path)
                    except Exception as error:  # noqa: BLE001 - the assertion
                        failures.append(error)
                        return

            hammer = threading.Thread(target=snapshot_hammer, daemon=True)
            hammer.start()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and not failures:
                futures = [
                    service.submit(w.query, strategy="fb", catalog=w.catalog)
                    for w in mixes
                ]
                for future in futures:
                    future.result(timeout=JOIN_TIMEOUT).raise_for_error()
            stop.set()
            hammer.join(timeout=JOIN_TIMEOUT)
        assert not failures, f"concurrent snapshot failed: {failures[0]!r}"
        # The last snapshot written mid-traffic is complete and loadable.
        with OptimizerService(shards=1, workers=1) as restarted:
            restored, error = restarted.recover_caches(path)
            assert error is None
            assert restored >= 1

    def test_failed_saves_are_counted_and_reported_never_raised(self, tmp_path):
        path = tmp_path / "warm.snap"
        service = self._warm_service()
        try:
            seen = []
            manager = SnapshotManager(
                service,
                path,
                faults=FaultInjector().rule("snapshot.write"),
                on_error=seen.append,
            )
            assert manager.save() is None
            assert manager.snapshot_failures == 1
            assert manager.snapshots_written == 0
            assert manager.last_error is not None
            assert len(seen) == 1 and isinstance(seen[0], SnapshotError)
        finally:
            service.shutdown()


# ---------------------------------------------------------------------- #
# admission recovery (satellite): overload burst -> drain -> accept again
# ---------------------------------------------------------------------- #
class TestAdmissionRecovery:
    @staticmethod
    def _blocking_optimizer(release, started):
        from repro.chase.optimizer import CBOptimizer

        class BlockingOptimizer(CBOptimizer):
            def optimize(self, query, **kwargs):
                started.set()
                assert release.wait(JOIN_TIMEOUT), "test never released the runner"
                return super().optimize(query, **kwargs)

        return BlockingOptimizer

    def test_shard_accepts_again_after_an_overload_burst(self, monkeypatch):
        import repro.service.shard as shard_module

        release, started = threading.Event(), threading.Event()
        monkeypatch.setattr(
            shard_module, "CBOptimizer", self._blocking_optimizer(release, started)
        )
        workload = build_ec2(1, 3, 1)
        expected = _single_shot_digests(workload)
        burst = 3
        with OptimizerServer(
            shards=1, executor="serial", max_inflight=1, max_queue_depth=1
        ) as server:
            with OptimizerClient(port=server.port) as plain:
                blocked = plain.submit(dict(EC2_REQUEST))
                assert started.wait(JOIN_TIMEOUT)
                # Burst past admission: every extra request sheds, typed.
                shed = [
                    plain.request(dict(EC2_REQUEST), timeout=JOIN_TIMEOUT)
                    for _ in range(burst)
                ]
                assert [r["status"] for r in shed] == ["overloaded"] * burst
                # A retrying client parks on the overload; once the runner
                # drains, the shard accepts again and serves the real plans.
                with OptimizerClient(
                    port=server.port, retries=50, backoff_base=0.01, backoff_seed=0
                ) as retrying:
                    threading.Timer(0.25, release.set).start()
                    retried = retrying.request(dict(EC2_REQUEST), timeout=JOIN_TIMEOUT)
                    assert retried["status"] == "ok"
                    assert retried["plan_digests"] == expected
                    overload_replays = retrying.replays
                assert blocked.result(timeout=JOIN_TIMEOUT)["status"] == "ok"
                stats = plain.stats()
        # Exact reconciliation: executed = blocked + retried; every shed
        # response a client saw (including the retrier's failed attempts)
        # was counted as a rejection exactly once.
        assert stats["requests"] == 2
        assert stats["rejected"] == burst + overload_replays
        assert stats["errors"] == 0
        assert stats["queue_peak"] == 1
        assert stats["queue_depth"] == 0


# ---------------------------------------------------------------------- #
# crash-recovery differential (subprocess kill -9) — acceptance criterion
# ---------------------------------------------------------------------- #
REPO_ROOT = Path(__file__).resolve().parents[1]

CRASH_MIX = [
    {"id": "q1", "workload": "ec2", "params": {"stars": 1, "corners": 3, "views": 1}},
    {"id": "q2", "workload": "ec1", "params": {"relations": 2, "secondary_indexes": 1}},
    {"id": "q3", "workload": "ec2", "params": {"stars": 1, "corners": 3, "views": 1},
     "strategy": "oqf"},
]


class TestCrashRecoveryDifferential:
    def _spawn_server(self, tmp_path, snapshot, interval="0.2"):
        port_file = tmp_path / "port"
        if port_file.exists():
            port_file.unlink()
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--port-file", str(port_file),
                "--snapshot", str(snapshot), "--snapshot-interval", interval,
                "--shards", "1", "--max-inflight", "1",
            ],
            env=env,
            cwd=str(REPO_ROOT),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        deadline = time.monotonic() + JOIN_TIMEOUT
        while time.monotonic() < deadline:
            if process.poll() is not None:
                raise AssertionError(
                    f"server died at boot: {process.communicate()[1]}"
                )
            if port_file.exists() and port_file.read_text().strip():
                return process, int(port_file.read_text().strip())
            time.sleep(0.02)
        process.kill()
        raise AssertionError("server never wrote its port file")

    def test_kill_nine_restart_replays_identically_and_warm(self, tmp_path):
        snapshot = tmp_path / "warm.snap"
        fresh = {
            record["id"]: _single_shot_digests(
                build_ec1(**record["params"])
                if record["workload"] == "ec1"
                else build_ec2(**record["params"]),
                record.get("strategy", "fb"),
            )
            for record in CRASH_MIX
        }

        # Life 1: warm the server, let the periodic loop snapshot, kill -9.
        process, port = self._spawn_server(tmp_path, snapshot)
        try:
            with OptimizerClient(port=port, retries=3, backoff_base=0.05) as client:
                for record in CRASH_MIX:
                    response = client.request(dict(record), timeout=JOIN_TIMEOUT)
                    assert response["status"] == "ok"
                    assert response["plan_digests"] == fresh[record["id"]]
            warmed_at = time.time()
            deadline = time.monotonic() + JOIN_TIMEOUT
            # Wait for a periodic snapshot *started* after the warm-up, so
            # the latest snapshot provably contains every complete session.
            # One fresh mtime is not enough: a save that began mid-request
            # (exporting a partially-warm session) can finish — and stamp its
            # rename — after warmed_at.  Saves are serialized, so a snapshot
            # strictly newer than one renamed at/after warmed_at must have
            # begun after the warm-up finished.
            first_fresh = None
            while time.monotonic() < deadline:
                if snapshot.exists():
                    mtime = os.path.getmtime(snapshot)
                    if first_fresh is None:
                        if mtime >= warmed_at:
                            first_fresh = mtime
                    elif mtime > first_fresh:
                        break
                time.sleep(0.05)
            else:
                raise AssertionError(
                    "no post-warm-up periodic snapshot within the deadline"
                )
            process.send_signal(signal.SIGKILL)  # no drain, no final save
            process.wait(timeout=JOIN_TIMEOUT)
        finally:
            if process.poll() is None:
                process.kill()

        # Life 2: restart from the latest periodic snapshot; the replay is
        # digest-identical to fresh single-shot runs and fully warm.
        process, port = self._spawn_server(tmp_path, snapshot)
        try:
            with OptimizerClient(port=port, retries=3, backoff_base=0.05) as client:
                for record in CRASH_MIX:
                    response = client.request(dict(record), timeout=JOIN_TIMEOUT)
                    assert response["status"] == "ok"
                    assert response["plan_digests"] == fresh[record["id"]]
                stats = client.stats()
            assert stats["snapshots_loaded"] == 1
            assert stats["recoveries"] == 0
            assert stats["cache_misses"] == 0, "crash restart was not warm"
            assert stats["cache_hits"] > 0
            process.terminate()  # graceful SIGTERM drain
            _, stderr = process.communicate(timeout=JOIN_TIMEOUT)
            assert process.returncode == 0, stderr
        finally:
            if process.poll() is None:
                process.kill()

    def test_corrupted_snapshot_boots_cold_with_exit_zero(self, tmp_path):
        snapshot = tmp_path / "warm.snap"
        snapshot.write_bytes(b"\x80\x04 definitely torn")
        process, port = self._spawn_server(tmp_path, snapshot)
        try:
            with OptimizerClient(port=port) as client:
                assert client.ping(timeout=JOIN_TIMEOUT)
                response = client.request(dict(CRASH_MIX[0]), timeout=JOIN_TIMEOUT)
                assert response["status"] == "ok"
                stats = client.stats()
            assert stats["recoveries"] == 1
            assert stats["snapshots_loaded"] == 0
            process.terminate()
            _, stderr = process.communicate(timeout=JOIN_TIMEOUT)
            assert process.returncode == 0, stderr
            assert "starting cold" in stderr
        finally:
            if process.poll() is None:
                process.kill()
