"""Positive fixture: leaked resources — five resource-lifecycle findings.

1. ``LeakyTransport.conn`` — a socket opened in ``__init__`` that no method
   of the class ever closes.
2. ``LeakyTransport.pump`` — a thread started and never joined.
3. ``LeakyTransport.workers`` — an executor whose ``# released-by:``
   annotation names a method the class does not define.
4. ``MisdeclaredPool.pool`` — a ``# released-by: stop`` annotation whose
   ``stop`` method exists but performs no release.
5. ``slurp`` — a local file handle that escapes neither ``with`` nor
   ``finally`` (returning ``handle.read()`` is not returning the handle).
"""

import socket
import threading
from concurrent.futures import ThreadPoolExecutor


class LeakyTransport:
    def __init__(self, host, port):
        self.conn = socket.create_connection((host, port))
        self.pump = threading.Thread(target=self._run, daemon=True)
        self.workers = ThreadPoolExecutor(max_workers=2)  # released-by: teardown
        self.pump.start()

    def _run(self):
        while True:
            self.conn.sendall(b"tick\n")

    def submit(self, fn):
        return self.workers.submit(fn)


class MisdeclaredPool:
    def __init__(self):
        self.pool = ThreadPoolExecutor(max_workers=1)  # released-by: stop

    def stop(self):
        pass  # forgot to shut the pool down


def slurp(path):
    handle = open(path)
    return handle.read()
