"""Negative fixture: a fully conformant metrics module — silent.

Every gauge has a mutator, every mutator is invoked somewhere in the
project, and every gauge appears in the exported snapshot.
"""

import threading


class Telemetry:  # repro-lint: ignore[pickle-safety] fixture collector, never pickled
    def __init__(self):
        self._lock = threading.Lock()
        self._served = 0
        self._dropped = 0

    def record_served(self):
        with self._lock:
            self._served += 1

    def record_dropped(self):
        with self._lock:
            self._dropped += 1

    def snapshot(self):
        with self._lock:
            return {"served": self._served, "dropped": self._dropped}


def drive(telemetry):
    telemetry.record_served()
    telemetry.record_dropped()
    return telemetry.snapshot()
