"""Negative interprocedural fixture: the helper threads the budget — silent."""


def chase_engine(query, deadline=None):
    steps = [query]
    if deadline is not None:
        steps.append(deadline)
    return steps


def launder(query, deadline=None):
    return chase_engine(query, deadline=deadline)


def run(query, deadline):
    return launder(query, deadline=deadline)
