"""Negative fixture (cross-module): consistent lock order — silent.

Same two classes as the positive twin, but every path acquires
``_ledger_lock`` before ``_mirror_lock``: the lock graph has one direction
and no cycle.
"""

import threading


class Ledger:  # repro-lint: ignore[pickle-safety] fixture class, never pickled
    def __init__(self, mirror):
        self._ledger_lock = threading.Lock()
        self.mirror = mirror
        self.entries = {}

    def post(self, key, value):
        with self._ledger_lock:
            self.entries[key] = value
            self.mirror.reflect(key, value)  # ledger -> mirror, the one order

    def audit(self, key):
        with self._ledger_lock:
            return self.entries.get(key)
