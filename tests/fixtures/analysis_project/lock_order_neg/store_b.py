"""Negative fixture (cross-module): the disciplined mirror — silent.

``replay`` reads the ledger *before* taking its own lock, so no path holds
``_mirror_lock`` while acquiring ``_ledger_lock`` and the acquisition graph
stays acyclic.
"""

import threading

from store_a import Ledger


class Mirror:  # repro-lint: ignore[pickle-safety] fixture class, never pickled
    def __init__(self):
        self._mirror_lock = threading.Lock()
        self.ledger = Ledger(self)
        self.shadow = {}

    def reflect(self, key, value):
        with self._mirror_lock:
            self.shadow[key] = value

    def replay(self, key):
        value = self.ledger.audit(key)  # ledger lock released before ours
        with self._mirror_lock:
            self.shadow[key] = value
            return value
