"""Negative alias fixture: the aliased call forwards the deadline — silent."""

from engine import chase as _chase


def run(query, deadline):
    return _chase(query, deadline=deadline)
