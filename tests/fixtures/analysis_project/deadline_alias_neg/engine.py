"""Alias-regression fixture: the deadline-accepting callee."""


def chase(query, deadline=None):
    steps = [query]
    if deadline is not None:
        steps.append(deadline)
    return steps
