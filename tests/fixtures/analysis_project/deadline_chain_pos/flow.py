"""Positive interprocedural fixture: a budget laundered through a helper.

``run`` accepts a deadline and calls ``launder``, which takes no budget yet
reaches the deadline-accepting ``chase_engine`` — the deadline silently
stops propagating one hop in.
"""


def chase_engine(query, deadline=None):
    steps = [query]
    if deadline is not None:
        steps.append(deadline)
    return steps


def launder(query):
    return chase_engine(query)


def run(query, deadline):
    return launder(query)
