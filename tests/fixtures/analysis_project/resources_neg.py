"""Negative fixture: every resource is released — silent.

Covers the release idioms the checker must recognise: a ``close`` method
calling the release verbs, a bound-method reference (released through a
closer tuple), ``with`` management, ``finally`` cleanup, ownership escape
by returning the handle, and deferred ``with`` on an already-open handle.
"""

import socket
import threading
from concurrent.futures import ThreadPoolExecutor


class TidyTransport:
    def __init__(self, host, port):
        self.conn = socket.create_connection((host, port))
        self.pump = threading.Thread(target=self._run, daemon=True)
        self.workers = ThreadPoolExecutor(max_workers=2)
        self.pump.start()

    def _run(self):
        while not getattr(self.conn, "_closed", False):
            self.conn.sendall(b"tick\n")

    def close(self):
        self.workers.shutdown(wait=False)
        self.conn.close()
        self.pump.join(timeout=1.0)


class ReferenceRelease:
    """Releases via bound-method references collected into a closer tuple."""

    def __init__(self, host, port):
        self.conn = socket.create_connection((host, port))
        self.pool = ThreadPoolExecutor(max_workers=1)

    def teardown(self):
        for closer in (self.conn.close, self.pool.shutdown):
            try:
                closer()
            except OSError:
                pass


def with_managed(path):
    with open(path) as handle:
        return handle.read()


def finally_closed(path):
    handle = open(path)
    try:
        return handle.read()
    finally:
        handle.close()


def escapes(path):
    handle = open(path)
    return handle  # caller owns it now


def later_with(path):
    handle = open(path)
    with handle:
        return handle.read()
