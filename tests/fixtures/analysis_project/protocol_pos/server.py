"""Positive fixture consumer: emits a field the protocol never declared.

``weather`` is not part of the vocabulary in ``protocol.py`` — exactly one
protocol-conformance finding.
"""

from protocol import ok_record


def handle(request_id, emit):
    emit(ok_record(request_id, []))
    response = {"id": request_id, "weather": "sunny"}
    emit(response)
