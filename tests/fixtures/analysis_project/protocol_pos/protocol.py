"""Positive fixture protocol module: the declared wire vocabulary."""


def ok_record(request_id, plans):
    return {"id": request_id, "status": "ok", "plans": plans}


__all__ = ["ok_record"]
