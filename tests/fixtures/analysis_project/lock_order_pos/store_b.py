"""Positive fixture (cross-module): the other half of the inversion.

``Mirror.replay`` acquires ``Mirror._mirror_lock`` and then calls
``Ledger.audit``, which takes ``Ledger._ledger_lock`` — the edge
``_mirror_lock → _ledger_lock``, opposite to ``store_a.Ledger.post``.
"""

import threading

from store_a import Ledger


class Mirror:  # repro-lint: ignore[pickle-safety] fixture class, never pickled
    def __init__(self):
        self._mirror_lock = threading.Lock()
        self.ledger = Ledger(self)
        self.shadow = {}

    def reflect(self, key, value):
        with self._mirror_lock:
            self.shadow[key] = value

    def replay(self, key):
        with self._mirror_lock:
            return self.ledger.audit(key)  # edge: _mirror_lock -> _ledger_lock
