"""Positive fixture (cross-module): half of a lock-order inversion.

``Ledger.post`` acquires ``Ledger._ledger_lock`` and then calls into the
mirror, whose ``reflect`` takes ``Mirror._mirror_lock`` — the edge
``_ledger_lock → _mirror_lock``.  ``store_b.Mirror.replay`` takes the same
two locks in the opposite order, closing the cycle: two threads running
``post`` and ``replay`` concurrently deadlock.
"""

import threading


class Ledger:  # repro-lint: ignore[pickle-safety] fixture class, never pickled
    def __init__(self, mirror):
        self._ledger_lock = threading.Lock()
        self.mirror = mirror
        self.entries = {}

    def post(self, key, value):
        with self._ledger_lock:
            self.entries[key] = value
            self.mirror.reflect(key, value)  # edge: _ledger_lock -> _mirror_lock

    def audit(self, key):
        with self._ledger_lock:
            return self.entries.get(key)
