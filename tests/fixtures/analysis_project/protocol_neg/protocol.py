"""Negative fixture protocol module: declares id/status/plans/error."""


def ok_record(request_id, plans):
    return {"id": request_id, "status": "ok", "plans": plans}


def error_record(request_id, message):
    record = {"id": request_id, "status": "error"}
    record["error"] = message
    return record


__all__ = ["ok_record", "error_record"]
