"""Negative fixture consumer: only declared fields cross the wire — silent."""

from protocol import ok_record


def handle(request_id, emit):
    emit(ok_record(request_id, []))
    response = {"id": request_id, "status": "error"}
    response["error"] = "nope"
    response.setdefault("plans", [])
    emit(response)
