"""Positive fixture: a metrics module with three conformance defects.

``Telemetry`` owns four gauges:

- ``_served``  — mutated, mutator invoked, exported: clean.
- ``_dropped`` — mutated and invoked but missing from the snapshot:
  write-only gauge.
- ``_phantom`` — declared but no method ever writes it: dead gauge.
- ``_orphaned`` — has a mutator (``record_orphaned``) that nothing in the
  project calls: never-invoked mutator.
"""

import threading


class Telemetry:  # repro-lint: ignore[pickle-safety] fixture collector, never pickled
    def __init__(self):
        self._lock = threading.Lock()
        self._served = 0
        self._dropped = 0
        self._phantom = 0
        self._orphaned = 0

    def record_served(self):
        with self._lock:
            self._served += 1

    def record_dropped(self):
        with self._lock:
            self._dropped += 1

    def record_orphaned(self):
        with self._lock:
            self._orphaned += 1

    def snapshot(self):
        with self._lock:
            return {"served": self._served, "orphaned": self._orphaned}


def drive(telemetry):
    telemetry.record_served()
    telemetry.record_dropped()
    return telemetry.snapshot()
