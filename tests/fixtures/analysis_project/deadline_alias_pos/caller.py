"""Positive alias fixture: ``from engine import chase as _chase`` severs
the budget — the pre-fix checker missed the aliased name entirely."""

from engine import chase as _chase


def run(query, deadline):
    return _chase(query)
