"""Positive fixture: coordinator state crossing a process boundary — 3 hits.

* ``ProcessWaveExecutor`` (declared ``kind = "processes"``) submits its
  ``self._cache`` into the pool.
* ``broken_initargs`` ships a ``shared_cache`` through ``initargs=``.
* ``local_pool`` submits a ``registry`` through a with-bound pool.
"""

from concurrent.futures import ProcessPoolExecutor


def _init_worker(shared_cache):
    return shared_cache


class ProcessWaveExecutor:
    kind = "processes"

    def __init__(self, cache):
        self._cache = cache
        self._pool = ProcessPoolExecutor(max_workers=2)

    def run(self, work):
        return self._pool.submit(work, self._cache)  # cache crosses: fires

    def close(self):
        self._pool.shutdown()


def broken_initargs(shared_cache):
    return ProcessPoolExecutor(
        max_workers=2,
        initializer=_init_worker,
        initargs=(shared_cache,),  # lock-carrying cache to workers: fires
    )


def local_pool(task, registry):
    with ProcessPoolExecutor(max_workers=2) as pool:
        return pool.submit(task, registry).result()  # registry crosses: fires
