"""Positive fixture: a deadline dropped mid-chain — deadline-propagation fires.

``run_chase`` receives a ``deadline`` and calls the deadline-accepting
``chase_step`` without passing it on, converting a bounded call into an
unbounded one.
"""


def chase_step(query, deadline=None):
    return query, deadline


def run_chase(query, deadline):
    return chase_step(query)  # drops the in-scope deadline: fires
