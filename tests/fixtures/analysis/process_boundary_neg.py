"""Negative fixture: thread pools share by reference, process pools ship data.

A thread executor submitting ``self._cache``/``self._memo`` is the *point*
of a shared-memory wave executor (PR 2's ``kind="threads"`` mode) and must
not be flagged; a process pool receiving plain picklable data is fine too.
"""

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor


class ThreadWaveExecutor:
    kind = "threads"

    def __init__(self, cache, memo):
        self._cache = cache
        self._memo = memo
        self._pool = ThreadPoolExecutor(max_workers=2)

    def run(self, work):
        return self._pool.submit(work, self._cache, self._memo)

    def close(self):
        self._pool.shutdown()


def plain_data_crossing(task, rows):
    with ProcessPoolExecutor(max_workers=2) as pool:
        return pool.submit(task, tuple(rows)).result()
