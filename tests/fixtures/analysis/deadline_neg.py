"""Negative fixture: every deadline-accepting call forwards the budget.

Covers the forwarding shapes the checker accepts: ``deadline=`` keyword,
positional pass-through, ``state.deadline``-style attributes, and callers
that never received a deadline in the first place (out of scope).
"""


def chase_step(query, deadline=None):
    return query, deadline


def run_keyword(query, deadline):
    return chase_step(query, deadline=deadline)


def run_positional(query, deadline):
    return chase_step(query, deadline)


def run_via_state(query, deadline, state):
    return chase_step(query, deadline=state.deadline)


def run_unbounded(query):
    # No deadline parameter here, so there is nothing to propagate.
    return chase_step(query)
