"""Positive fixture: an unjustified suppression does not suppress.

The ``ignore[...]`` below carries no real justification, so repro-lint
reports a ``suppression`` finding *and* the underlying lock-discipline
finding still fires.
"""

import threading

write_lock = threading.Lock()  # repro-lint: ignore[lock-discipline] no
