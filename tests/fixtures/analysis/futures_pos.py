"""Positive fixture: leaked futures and a swallowed crash — three findings.

* ``LeakyDemux.submit`` stores into ``self.pending`` and never releases.
* ``LeakyHandler.handle`` has an except path that neither releases the
  ``began()`` acquisition nor re-raises.
* ``swallow_crash`` absorbs ``BaseException`` (and therefore the fault
  harness's ``InjectedCrash``) without re-raising or reporting.
"""


class LeakyDemux:
    def __init__(self):
        self.pending = {}

    def submit(self, request_id, future):
        self.pending[request_id] = future  # never released: fires
        return future


class LeakyHandler:
    def handle(self, connection, line):
        connection.began()
        try:
            result = self.run(line)
        except ValueError:
            return None  # neither releases nor re-raises: fires
        connection.finished()
        return result

    def run(self, line):
        return line


def swallow_crash(task):
    try:
        task()
    except BaseException:
        return None  # absorbs InjectedCrash silently: fires
