"""Positive fixture: lock-discipline must fire exactly twice here.

* ``Gauge.bump`` touches a ``# guarded-by:`` attribute without the lock.
* ``write_lock`` is an ad-hoc lock bound to a bare module-level name.
"""

import threading


class Gauge:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0  # guarded-by: _lock

    def bump(self):
        self._count += 1  # unguarded write: lock-discipline fires here

    def read(self):
        with self._lock:
            return self._count

    def __getstate__(self):
        with self._lock:
            state = dict(self.__dict__)
        del state["_lock"]
        return state


write_lock = threading.Lock()  # ad-hoc bare-name lock: lock-discipline fires
