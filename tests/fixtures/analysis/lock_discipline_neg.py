"""Negative fixture: every guarded access is disciplined — analyzer silent.

Covers the conventions the checker honours: ``with self._lock:`` blocks,
``# holds:`` documented helpers, and nested callables that re-acquire the
lock themselves (held locks must not leak into deferred bodies).
"""

import threading


class Gauge:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0  # guarded-by: _lock

    def bump(self):
        with self._lock:
            self._count += 1

    def _bump_locked(self):  # holds: _lock
        self._count += 1

    def deferred_bump(self):
        def tick():
            with self._lock:
                self._count += 1

        return tick

    def __getstate__(self):
        with self._lock:
            state = dict(self.__dict__)
        del state["_lock"]
        return state
