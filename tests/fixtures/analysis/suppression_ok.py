"""Negative fixture: justified suppressions silence findings — analyzer silent.

Demonstrates both scoping forms: a class-header suppression covering the
whole class (pickle-safety) and a line-level suppression on one access
(lock-discipline).  Both carry written justifications.
"""

import threading


class MonitoredGauge:  # repro-lint: ignore[pickle-safety] fixture object, never pickled
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0  # guarded-by: _lock

    def bump(self):
        with self._lock:
            self._count += 1

    def peek(self):
        return self._count  # repro-lint: ignore[lock-discipline] monitoring read; a stale value is acceptable
