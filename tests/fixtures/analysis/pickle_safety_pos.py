"""Positive fixture: the PR 6 snapshot-loop killer, distilled.

``SnapshotShadow`` reproduces the bug that silently killed the background
snapshot thread under traffic: its ``__getstate__`` copies ``self.__dict__``
— live ``OrderedDict`` included — *outside* the guarding lock, so a
concurrent writer mutates the cache mid-pickle; it also never strips the
unpicklable lock.  ``NoGetstate`` owns a lock with no ``__getstate__`` at
all.  pickle-safety must fire three times.
"""

import threading
from collections import OrderedDict


class SnapshotShadow:
    def __init__(self):
        self._lock = threading.Lock()
        self._cache = OrderedDict()  # guarded-by: _lock

    def put(self, key, value):
        with self._lock:
            self._cache[key] = value

    def __getstate__(self):
        state = dict(self.__dict__)  # copied outside self._lock: fires
        return state  # and the lock is never stripped: fires


class NoGetstate:  # owns a lock, defines no __getstate__: fires
    def __init__(self):
        self._lock = threading.Lock()
