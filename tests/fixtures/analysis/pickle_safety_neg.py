"""Negative fixture: the pickle-safe shape of the PR 6 pattern — silent.

The container snapshot happens *inside* ``with self._lock:`` and the
unpicklable lock is stripped from the state dict before it is returned.
"""

import threading
from collections import OrderedDict


class SnapshotSafe:
    def __init__(self):
        self._lock = threading.Lock()
        self._cache = OrderedDict()  # guarded-by: _lock

    def put(self, key, value):
        with self._lock:
            self._cache[key] = value

    def __getstate__(self):
        with self._lock:
            state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()
