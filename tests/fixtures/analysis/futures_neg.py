"""Negative fixture: every acquisition resolves on every path — silent.

Covers the release shapes the checker accepts: ``pop`` + re-raise in the
except handler, ``finally``-based release of a ``began()`` acquisition, and
a ``BaseException`` handler that reports via ``set_exception`` then
re-raises.
"""


class SafeDemux:
    def __init__(self):
        self.pending = {}

    def submit(self, request_id, future, sock, data):
        self.pending[request_id] = future
        try:
            sock.sendall(data)
        except OSError as error:
            self.pending.pop(request_id, None)
            raise ConnectionError(str(error)) from error
        return future


class SafeHandler:
    def handle(self, connection, line):
        connection.began()
        try:
            return self.run(line)
        finally:
            connection.finished()

    def run(self, line):
        return line


def report_crash(task, future):
    try:
        task()
    except BaseException as error:
        future.set_exception(error)
        raise
