"""Unit tests for path expressions and the shared AST helpers."""

import pytest

from repro.lang.ast import (
    Attr,
    Binding,
    Const,
    Dom,
    Eq,
    Lookup,
    SchemaRef,
    Var,
    path_root,
    path_variables,
    schema_names,
    subpaths,
    substitute,
)


class TestPathConstruction:
    def test_attr_helper(self):
        assert Var("r").attr("A") == Attr(Var("r"), "A")

    def test_lookup_helper(self):
        assert SchemaRef("M").lookup(Var("k")) == Lookup(SchemaRef("M"), Var("k"))

    def test_dom_helper(self):
        assert SchemaRef("M").dom == Dom(SchemaRef("M"))

    def test_paths_are_hashable(self):
        paths = {Var("x"), Const(1), SchemaRef("R"), Attr(Var("x"), "A")}
        assert len(paths) == 4

    def test_structural_equality(self):
        assert Attr(Var("r"), "A") == Attr(Var("r"), "A")
        assert Attr(Var("r"), "A") != Attr(Var("r"), "B")

    def test_str_rendering(self):
        path = Attr(Lookup(SchemaRef("M"), Var("k")), "N")
        assert str(path) == "M[k].N"

    def test_dom_str(self):
        assert str(Dom(SchemaRef("M"))) == "dom M"

    def test_const_str_quotes_strings(self):
        assert str(Const("abc")) == "'abc'"
        assert str(Const(3)) == "3"


class TestSubstitute:
    def test_substitute_variable(self):
        assert substitute(Var("x"), {"x": Var("y")}) == Var("y")

    def test_substitute_missing_variable_untouched(self):
        assert substitute(Var("x"), {"z": Var("y")}) == Var("x")

    def test_substitute_inside_attr(self):
        path = Attr(Var("x"), "A")
        assert substitute(path, {"x": Var("y")}) == Attr(Var("y"), "A")

    def test_substitute_inside_lookup_and_dom(self):
        path = Dom(Lookup(SchemaRef("M"), Var("k")))
        result = substitute(path, {"k": Const(1)})
        assert result == Dom(Lookup(SchemaRef("M"), Const(1)))

    def test_substitute_constant_and_schema_ref(self):
        assert substitute(Const(5), {"x": Var("y")}) == Const(5)
        assert substitute(SchemaRef("R"), {"R": Var("y")}) == SchemaRef("R")

    def test_substitute_with_non_path_raises(self):
        with pytest.raises(TypeError):
            substitute("not a path", {})


class TestPathInspection:
    def test_path_variables(self):
        path = Attr(Lookup(SchemaRef("M"), Var("k")), "N")
        assert path_variables(path) == {"k"}

    def test_path_variables_of_const(self):
        assert path_variables(Const(1)) == set()

    def test_path_root_of_attr_chain(self):
        assert path_root(Attr(Attr(Var("r"), "A"), "B")) == Var("r")

    def test_path_root_of_lookup(self):
        assert path_root(Lookup(SchemaRef("M"), Var("k"))) == SchemaRef("M")

    def test_subpaths_postorder(self):
        path = Attr(Lookup(SchemaRef("M"), Var("k")), "N")
        parts = list(subpaths(path))
        assert parts[-1] == path
        assert SchemaRef("M") in parts and Var("k") in parts

    def test_schema_names(self):
        path = Lookup(SchemaRef("M"), Attr(Var("x"), "A"))
        assert schema_names(path) == {"M"}


class TestEqAndBinding:
    def test_eq_normalized_is_order_insensitive(self):
        first = Eq(Var("x"), Var("y")).normalized()
        second = Eq(Var("y"), Var("x")).normalized()
        assert first == second

    def test_eq_substitute(self):
        condition = Eq(Attr(Var("x"), "A"), Const(1))
        assert condition.substitute({"x": Var("y")}) == Eq(Attr(Var("y"), "A"), Const(1))

    def test_binding_substitute_only_affects_range(self):
        binding = Binding("o", Attr(Lookup(SchemaRef("M"), Var("k")), "N"))
        renamed = binding.substitute({"k": Var("k2")})
        assert renamed.var == "o"
        assert renamed.range == Attr(Lookup(SchemaRef("M"), Var("k2")), "N")

    def test_eq_str(self):
        assert str(Eq(Var("x"), Const(1))) == "x = 1"
