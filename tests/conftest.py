"""Shared fixtures: small catalogs and queries used across the test suite."""

from __future__ import annotations

import pytest

from repro.cq.query import PCQuery
from repro.schema.catalog import Catalog


@pytest.fixture
def simple_catalog():
    """A two-relation catalog with a foreign key (Example 2.1's shape)."""
    catalog = Catalog()
    catalog.add_relation("R", ["A", "B", "C", "E"])
    catalog.add_relation("S", ["A"])
    catalog.add_foreign_key("R", ["A"], "S", ["A"])
    return catalog


@pytest.fixture
def star_catalog():
    """A single-star EC2 catalog: hub R1, corners S11..S13, one view, a key."""
    catalog = Catalog()
    catalog.add_relation("R1", ["K", "F", "A1", "A2", "A3"], key=["K"])
    catalog.add_key("R1", ["K"])
    for corner in (1, 2, 3):
        catalog.add_relation(f"S1{corner}", ["A", "B"])
    view = PCQuery.parse(
        "select struct(K: r.K, B1: s1.B, B2: s2.B) "
        "from R1 r, S11 s1, S12 s2 where r.A1 = s1.A and r.A2 = s2.A"
    )
    catalog.add_materialized_view("V11", view)
    return catalog


@pytest.fixture
def star_query():
    """The single-star query over the star_catalog fixture."""
    return PCQuery.parse(
        "select struct(B1: s1.B, B2: s2.B, B3: s3.B) "
        "from R1 r, S11 s1, S12 s2, S13 s3 "
        "where r.A1 = s1.A and r.A2 = s2.A and r.A3 = s3.A"
    ).validate()


@pytest.fixture
def chain_query():
    """A two-relation chain join used by chase/backchase unit tests."""
    return PCQuery.parse(
        "select struct(A: r1.K, B: r2.K) from R1 r1, R2 r2 where r1.N = r2.K"
    ).validate()
