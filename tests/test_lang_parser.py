"""Unit tests for the OQL-like parser."""

import pytest

from repro.errors import ParseError
from repro.lang.ast import Attr, Const, Dom, Lookup, SchemaRef, Var
from repro.lang.parser import parse_dependency, parse_path, parse_query


class TestPathParsing:
    def test_simple_attribute(self):
        assert parse_path("r.A") == Attr(Var("r"), "A")

    def test_nested_attributes(self):
        assert parse_path("r.A.B") == Attr(Attr(Var("r"), "A"), "B")

    def test_dictionary_lookup(self):
        assert parse_path("M[k]") == Lookup(Var("M"), Var("k"))

    def test_dom(self):
        assert parse_path("dom M") == Dom(Var("M"))

    def test_lookup_then_attribute(self):
        assert parse_path("M[k].N") == Attr(Lookup(Var("M"), Var("k")), "N")

    def test_integer_constant(self):
        assert parse_path("42") == Const(42)

    def test_float_constant(self):
        assert parse_path("4.5") == Const(4.5)

    def test_string_constant(self):
        assert parse_path("'abc'") == Const("abc")

    def test_boolean_constants(self):
        assert parse_path("true") == Const(True)
        assert parse_path("false") == Const(False)

    def test_parenthesised_path(self):
        assert parse_path("(r).A") == Attr(Var("r"), "A")

    def test_garbage_raises(self):
        with pytest.raises(ParseError):
            parse_path("r.@")


class TestQueryParsing:
    def test_struct_output_with_colon(self):
        query = parse_query("select struct(X: r.A) from R r")
        assert query.output == (("X", Attr(Var("r"), "A")),)

    def test_struct_output_with_equals(self):
        query = parse_query("select struct(X = r.A) from R r")
        assert query.output == (("X", Attr(Var("r"), "A")),)

    def test_from_clause_oql_style(self):
        query = parse_query("select struct(X: r.A) from R r")
        assert query.bindings[0].var == "r"
        assert query.bindings[0].range == SchemaRef("R")

    def test_from_clause_in_style(self):
        query = parse_query("select struct(X: r.A) from r in R")
        assert query.bindings[0].range == SchemaRef("R")

    def test_where_clause(self):
        query = parse_query("select struct(X: r.A) from R r where r.B = 1 and r.C = 2")
        assert len(query.conditions) == 2

    def test_no_where_clause(self):
        query = parse_query("select struct(X: r.A) from R r")
        assert query.conditions == ()

    def test_variables_resolved_against_bindings(self):
        query = parse_query("select struct(X: r.A) from R r, S s where r.A = s.A")
        condition = query.conditions[0]
        assert condition.left == Attr(Var("r"), "A")
        assert condition.right == Attr(Var("s"), "A")

    def test_unbound_identifier_in_range_is_schema_ref(self):
        query = parse_query("select struct(K: k) from dom M k")
        assert query.bindings[0].range == Dom(SchemaRef("M"))

    def test_dictionary_navigation_range(self):
        query = parse_query("select struct(O: o) from dom M k, M[k].N o")
        assert query.bindings[1].range == Attr(Lookup(SchemaRef("M"), Var("k")), "N")

    def test_bare_output_list(self):
        query = parse_query("select r.A, r.B from R r")
        assert [label for label, _ in query.output] == ["A", "B"]

    def test_select_distinct_is_accepted(self):
        query = parse_query("select distinct struct(X: r.A) from R r")
        assert query.output[0][0] == "X"

    def test_missing_from_raises(self):
        with pytest.raises(ParseError):
            parse_query("select struct(X: r.A)")

    def test_trailing_garbage_raises(self):
        with pytest.raises(ParseError):
            parse_query("select struct(X: r.A) from R r extra")

    def test_multiple_bindings_and_constants(self):
        query = parse_query(
            "select struct(A: r.A, E: r.E) from R r, S s "
            "where r.B = 'b' and r.C = 3 and r.A = s.A"
        )
        assert len(query.bindings) == 2
        assert Const("b") in (query.conditions[0].left, query.conditions[0].right)


class TestDependencyParsing:
    def test_tgd(self):
        universal, premise, existential, conclusion = parse_dependency(
            "forall r in R implies exists s in S where r.A = s.A"
        )
        assert [binding.var for binding in universal] == ["r"]
        assert premise == ()
        assert [binding.var for binding in existential] == ["s"]
        assert len(conclusion) == 1

    def test_tgd_with_premise(self):
        universal, premise, existential, conclusion = parse_dependency(
            "forall r in R, s1 in S where r.A = s1.A "
            "implies exists v in V where v.K = r.K"
        )
        assert len(universal) == 2
        assert len(premise) == 1
        assert len(existential) == 1
        assert len(conclusion) == 1

    def test_egd(self):
        universal, premise, existential, conclusion = parse_dependency(
            "forall r in R, r2 in R where r.K = r2.K implies r = r2"
        )
        assert existential == ()
        assert conclusion[0].left == Var("r")
        assert conclusion[0].right == Var("r2")

    def test_dictionary_dependency(self):
        universal, _, existential, conclusion = parse_dependency(
            "forall k in dom M1, o in M1[k].N "
            "implies exists k2 in dom M2, o2 in M2[k2].P where k2 = o and o2 = k"
        )
        assert universal[1].range == Attr(Lookup(SchemaRef("M1"), Var("k")), "N")
        assert len(conclusion) == 2

    def test_missing_implies_raises(self):
        with pytest.raises(ParseError):
            parse_dependency("forall r in R exists s in S")
