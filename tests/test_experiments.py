"""Tests for the experiment harness, figure drivers and reporting (small scales)."""

from repro.experiments.figures import (
    figure5_ec1,
    figure5_ec2,
    figure5_ec3,
    figure6_ec1,
    figure6_ec3,
    figure7_ec2,
    figure8_granularity,
    figure9_plan_detail,
    figure10_time_reduction,
    plans_table_ec2,
)
from repro.experiments.harness import measure_chase, measure_execution, measure_strategy
from repro.experiments.reporting import render_series, render_table
from repro.workloads.ec2 import build_ec2
from repro.workloads.ec3 import build_ec3


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(["a", "long header"], [[1, 2.5], ["xyz", 3]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long header" in lines[1]
        assert "2.500" in text

    def test_render_series(self):
        text = render_series({"s1": [(1, 0.5), (2, 0.7)], "s2": [(1, 0.1)]}, x_label="n")
        assert "s1" in text and "s2" in text and "0.700" in text


class TestHarness:
    def test_measure_chase(self):
        measurement = measure_chase(build_ec2(1, 3, 1))
        assert measurement.query_size == 4
        assert measurement.constraint_count == 3
        assert measurement.universal_plan_size >= 4
        assert measurement.chase_time >= 0

    def test_measure_strategy(self):
        measurement = measure_strategy(build_ec2(1, 3, 1), "fb")
        assert measurement.plan_count == 2
        assert measurement.time_per_plan > 0
        assert not measurement.timed_out

    def test_measure_execution_redux_indices(self):
        measurement = measure_execution(build_ec2(1, 3, 1), size=200, seed=0)
        assert len(measurement.plan_rows) == 2
        assert all(entry["matches_original"] for entry in measurement.plan_rows)
        assert measurement.best_execution_time <= measurement.original_execution_time
        assert measurement.redux <= measurement.redux_first <= 1.0


class TestFigureDrivers:
    def test_figure5_drivers_produce_rows(self):
        assert len(figure5_ec1(settings=((2, 0), (2, 1))).rows) == 2
        assert len(figure5_ec2(stars=1, corner_range=(3, 4), views_options=(1,)).rows) == 2
        assert len(figure5_ec3(class_counts=(2, 3)).rows) == 2

    def test_plans_table_matches_paper_on_small_rows(self):
        result = plans_table_ec2(rows=((1, 3, 1, 2, 2), (1, 3, 2, 4, 3)), timeout=60)
        for row in result.rows:
            _, _, _, fb, oqf, ocs, paper_complete, paper_ocs = row
            assert fb == oqf == paper_complete
            assert ocs == paper_ocs

    def test_figure6_and_7_drivers(self):
        ec1_rows = figure6_ec1(settings=((2, 0), (2, 1)), timeout=30).rows
        assert len(ec1_rows) == 2
        ec3_rows = figure6_ec3(class_counts=(2, 3), timeout=30).rows
        assert len(ec3_rows) == 2
        ec2_rows = figure7_ec2(points=((1, 1, 3),), timeout=30).rows
        assert len(ec2_rows) == 1

    def test_figure8_granularity_normalizes_to_first_point(self):
        result = figure8_granularity(
            workloads=[("EC3 with 3 classes", build_ec3(3)), ("EC2 [2,2,1]", build_ec2(2, 2, 1))],
            timeout=60,
        )
        assert result.rows
        first_row = result.rows[0]
        assert first_row[0] == 1
        for value in first_row[1:]:
            assert value == 1.0

    def test_figure9_plan_detail(self):
        result = figure9_plan_detail(stars=2, corners=2, views=1, size=200)
        assert len(result.rows) == 4
        assert all(row[-1] for row in result.rows)  # every plan matches the original
        assert "plans generated" in result.notes
        assert result.render()

    def test_figure10_time_reduction(self):
        result = figure10_time_reduction(points=((2, 2, 1),), size=200)
        assert len(result.rows) == 1
        assert result.measurements[0].plan_rows
        assert result.render()
