"""Project-scope repro-lint suite: whole-program rules, baselines, reporting.

Companion to ``test_analysis.py`` (which owns the module-scope rules).
Fixture-driven over ``tests/fixtures/analysis_project/``: each project-scope
rule has a positive corpus (the rule must fire, with an exact count) and a
disciplined negative twin (the analyzer must stay silent), plus regression
corpora for the two deadline-propagation fixes this analyzer generation
added — import-alias resolution and interprocedural budget laundering.

The reporting half pins the CI contract: ``--format json`` emits a parseable
report, baselines round-trip and subtract, the committed
``analysis-baseline.json`` keeps ``src/repro`` clean, and the README
documents every registered rule.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.analysis import ALL_CHECKERS, analyze_paths
from repro.analysis.baseline import (
    BASELINE_VERSION,
    apply_baseline,
    baseline_key,
    load_baseline,
    write_baseline,
)
from repro.analysis.runner import EXIT_CLEAN, EXIT_FINDINGS, main

REPO = Path(__file__).resolve().parents[1]
CORPUS = Path(__file__).resolve().parent / "fixtures" / "analysis_project"
SRC = REPO / "src" / "repro"
README = REPO / "README.md"
BASELINE = REPO / "analysis-baseline.json"

PROJECT_RULES = sorted(
    cls.rule for cls in ALL_CHECKERS if cls.scope == "project"
)

#: rule id -> (fixture file or directory, expected finding count)
POSITIVE = {
    "lock-ordering": ("lock_order_pos", 2),
    "resource-lifecycle": ("resources_pos.py", 5),
    "metrics-conformance": ("metrics_pos", 3),
    "protocol-conformance": ("protocol_pos", 1),
}

NEGATIVE = {
    "lock-ordering": "lock_order_neg",
    "resource-lifecycle": "resources_neg.py",
    "metrics-conformance": "metrics_neg",
    "protocol-conformance": "protocol_neg",
}


def analyze_fixture(name, rules=None):
    findings, errors = analyze_paths([str(CORPUS / name)], rules=rules)
    assert errors == []
    return findings


class TestProjectCorpus:
    def test_corpus_is_complete(self):
        """Every project-scope rule has a positive and a negative corpus."""
        assert set(POSITIVE) == set(PROJECT_RULES)
        assert set(NEGATIVE) == set(PROJECT_RULES)
        for name, _count in POSITIVE.values():
            assert (CORPUS / name).exists(), name
        for name in NEGATIVE.values():
            assert (CORPUS / name).exists(), name

    @pytest.mark.parametrize("rule", PROJECT_RULES)
    def test_positive_corpus_fires_exactly_its_rule(self, rule):
        """All checkers on: the positive corpus yields only its own rule."""
        name, count = POSITIVE[rule]
        findings = analyze_fixture(name)
        assert {f.rule for f in findings} == {rule}
        assert len(findings) == count

    @pytest.mark.parametrize("rule", PROJECT_RULES)
    def test_negative_corpus_is_silent(self, rule):
        assert analyze_fixture(NEGATIVE[rule]) == []

    @pytest.mark.parametrize("rule", PROJECT_RULES)
    def test_disabling_the_checker_silences_its_corpus(self, rule):
        """Each project checker is load-bearing, same as the module ones."""
        others = [r for r in PROJECT_RULES if r != rule]
        name, _count = POSITIVE[rule]
        assert analyze_fixture(name, rules=others) == []
        assert analyze_fixture(name, rules=[rule]) != []


class TestLockOrderInversion:
    """The seeded cross-module deadlock the tentpole must demonstrably catch."""

    def test_both_sides_of_the_cycle_are_named(self):
        findings = analyze_fixture("lock_order_pos")
        paths = sorted(Path(f.path).name for f in findings)
        assert paths == ["store_a.py", "store_b.py"]
        for finding in findings:
            assert "lock-order cycle" in finding.message
            assert "potential deadlock" in finding.message
        # Each finding points at the *opposite* edge's site, so a reader can
        # jump straight to the conflicting acquisition.
        by_name = {Path(f.path).name: f.message for f in findings}
        assert "store_b.py" in by_name["store_a.py"]
        assert "store_a.py" in by_name["store_b.py"]

    def test_consistent_order_is_silent(self):
        assert analyze_fixture("lock_order_neg") == []


class TestDeadlineRegressions:
    """PR 8's two deadline-propagation fixes, pinned as corpora."""

    def test_import_alias_no_longer_blinds_the_checker(self):
        """`from engine import chase as _chase` severs the budget: fires."""
        findings = analyze_fixture("deadline_alias_pos")
        assert [f.rule for f in findings] == ["deadline-propagation"]
        assert "_chase" in findings[0].message
        assert Path(findings[0].path).name == "caller.py"

    def test_aliased_call_forwarding_the_deadline_is_silent(self):
        assert analyze_fixture("deadline_alias_neg") == []

    def test_interprocedural_laundering_is_flagged(self):
        """A budget-less helper that reaches a deadline callee: fires."""
        findings = analyze_fixture("deadline_chain_pos")
        assert [f.rule for f in findings] == ["deadline-propagation"]
        assert "launder" in findings[0].message
        assert "chase_engine" in findings[0].message

    def test_threading_the_budget_through_the_helper_is_silent(self):
        assert analyze_fixture("deadline_chain_neg") == []


class TestBaseline:
    def test_round_trip_and_subtraction(self, tmp_path):
        findings = analyze_fixture("resources_pos.py")
        assert len(findings) == 5
        path = tmp_path / "baseline.json"
        write_baseline(path, findings)
        keys = load_baseline(path)
        assert keys == {baseline_key(f) for f in findings}
        kept, count = apply_baseline(findings, keys)
        assert kept == [] and count == 5

    def test_matching_ignores_line_numbers(self, tmp_path):
        """Unrelated edits that shift a finding must not resurrect it."""
        findings = analyze_fixture("resources_pos.py")
        path = tmp_path / "baseline.json"
        write_baseline(path, findings)
        keys = load_baseline(path)
        shifted = [dataclasses.replace(f, line=f.line + 40) for f in findings]
        kept, count = apply_baseline(shifted, keys)
        assert kept == [] and count == len(findings)

    def test_wrong_version_is_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_cli_write_then_enforce(self, tmp_path, capsys):
        """--write-baseline records findings; --baseline then gates clean."""
        corpus = str(CORPUS / "resources_pos.py")
        baseline = str(tmp_path / "baseline.json")
        assert main([corpus, "--write-baseline", baseline]) == EXIT_CLEAN
        assert main([corpus, "--baseline", baseline]) == EXIT_CLEAN
        captured = capsys.readouterr()
        assert "(5 baselined)" in captured.err

    def test_cli_new_finding_still_fails_the_gate(self, tmp_path, capsys):
        """A baseline of *other* findings does not absorb a fresh one."""
        baseline = str(tmp_path / "baseline.json")
        clean = str(CORPUS / "resources_neg.py")
        dirty = str(CORPUS / "resources_pos.py")
        assert main([clean, "--write-baseline", baseline]) == EXIT_CLEAN
        assert main([dirty, "--baseline", baseline]) == EXIT_FINDINGS
        captured = capsys.readouterr()
        assert "5 finding(s)" in captured.err


class TestJSONReport:
    def test_json_format_is_a_parseable_report(self, capsys):
        assert main(
            [str(CORPUS / "resources_pos.py"), "--format", "json"]
        ) == EXIT_FINDINGS
        report = json.loads(capsys.readouterr().out)
        assert set(report) == {"findings", "errors", "baselined"}
        assert report["errors"] == [] and report["baselined"] == 0
        assert len(report["findings"]) == 5
        for entry in report["findings"]:
            assert set(entry) == {"path", "line", "col", "rule", "message"}
            assert entry["rule"] == "resource-lifecycle"

    def test_clean_json_report_exits_zero(self, capsys):
        assert main(
            [str(CORPUS / "resources_neg.py"), "--format", "json"]
        ) == EXIT_CLEAN
        report = json.loads(capsys.readouterr().out)
        assert report["findings"] == []


class TestRepoContract:
    """The CI gate, as committed: src/repro is clean against the baseline."""

    def test_committed_baseline_is_current_format(self):
        data = json.loads(BASELINE.read_text(encoding="utf-8"))
        assert data["version"] == BASELINE_VERSION

    def test_serving_stack_is_clean_against_the_committed_baseline(self):
        findings, errors = analyze_paths([str(SRC)])
        assert errors == []
        kept, _ = apply_baseline(findings, load_baseline(BASELINE))
        assert kept == [], "\n".join(f.render() for f in kept)

    def test_readme_documents_every_registered_rule(self):
        """Docs drift gate: each rule id must appear in the README."""
        text = README.read_text(encoding="utf-8")
        for cls in ALL_CHECKERS:
            assert f"`{cls.rule}`" in text, (
                f"rule {cls.rule!r} is registered but undocumented in README"
            )
