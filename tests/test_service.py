"""The long-lived optimizer service: equivalence, warmth, sharding, batching.

The load-bearing property is **plan-set equivalence**: every plan list that
comes back through :class:`~repro.service.OptimizerService` — any strategy,
any workload, warm or cold caches, batched with other requests or alone —
must be signature-identical to a fresh single-shot
:meth:`~repro.chase.optimizer.CBOptimizer.optimize` with the same knobs.
The remaining tests cover the admission/sharding layer, the warm-cache
behaviour across requests, the cross-query wave batching, the metrics
surface and the lifecycle.
"""

import threading

import pytest

from repro.chase.implication import constraint_signature
from repro.service import (
    OptimizerService,
    ScheduledPool,
    WaveScheduler,
    shard_index,
)
from repro.workloads import build_ec1, build_ec2, build_ec3


def _signatures(plans):
    return {plan.signature() for plan in plans}


def _single_shot(workload, strategy, timeout=None):
    return workload.optimizer(timeout=timeout).optimize(workload.query, strategy=strategy)


class TestPlanSetEquivalence:
    """Service plans == fresh single-shot plans, for every strategy."""

    @pytest.mark.parametrize("strategy", ["fb", "oqf", "ocs"])
    @pytest.mark.parametrize(
        "build,args",
        [(build_ec2, (1, 3, 2)), (build_ec1, (2, 1)), (build_ec3, (3, 0))],
    )
    def test_matches_single_shot(self, build, args, strategy):
        workload = build(*args)
        baseline = _single_shot(workload, strategy)
        with OptimizerService(shards=1, executor="threads", workers=2) as service:
            response = service.submit(
                workload.query, strategy=strategy, catalog=workload.catalog
            ).result()
        assert response.ok
        assert _signatures(response.result.plans) == _signatures(baseline.plans)
        assert response.result.plan_count == baseline.plan_count

    @pytest.mark.parametrize("executor", ["serial", "threads"])
    def test_matches_under_both_service_executors(self, executor):
        workload = build_ec2(1, 3, 1)
        baseline = _single_shot(workload, "fb")
        with OptimizerService(shards=1, executor=executor, workers=2) as service:
            response = service.submit(workload.query, catalog=workload.catalog).result()
        assert _signatures(response.result.plans) == _signatures(baseline.plans)

    def test_warm_repeat_requests_still_match(self):
        """The second (fully cache-hit) request returns the same plan set."""
        workload = build_ec2(1, 3, 2)
        baseline = _single_shot(workload, "fb")
        with OptimizerService(shards=1, workers=2) as service:
            first = service.submit(workload.query, catalog=workload.catalog).result()
            second = service.submit(workload.query, catalog=workload.catalog).result()
        assert _signatures(first.result.plans) == _signatures(baseline.plans)
        assert _signatures(second.result.plans) == _signatures(baseline.plans)

    def test_concurrent_mixed_batch_matches(self):
        """Interleaved multi-catalog traffic (batched waves) stays exact."""
        configs = [
            (build_ec2(1, 3, 2), "fb"),
            (build_ec1(2, 1), "fb"),
            (build_ec3(3, 0), "ocs"),
            (build_ec2(2, 2, 1), "oqf"),
        ]
        baselines = [_single_shot(w, s) for w, s in configs]
        with OptimizerService(shards=2, workers=2, max_inflight=4) as service:
            futures = [
                service.submit(w.query, strategy=s, catalog=w.catalog)
                for w, s in configs
                for _ in range(2)
            ]
            responses = [future.result() for future in futures]
        for index, response in enumerate(responses):
            assert response.ok, response.error
            baseline = baselines[index // 2]
            assert _signatures(response.result.plans) == _signatures(baseline.plans)


class TestWarmCaches:
    def test_second_request_hits_the_warm_cache(self):
        workload = build_ec2(1, 3, 1)
        with OptimizerService(shards=1, workers=2) as service:
            first = service.submit(workload.query, catalog=workload.catalog).result()
            second = service.submit(workload.query, catalog=workload.catalog).result()
        assert first.metrics.cache_misses > 0
        assert second.metrics.cache_misses == 0
        assert second.metrics.cache_hits > 0
        # ...and it is faster than the cold first call.
        assert second.metrics.latency < first.metrics.latency

    def test_sessions_are_per_constraint_set(self):
        ec2 = build_ec2(1, 3, 1)
        ec1 = build_ec1(2, 0)
        with OptimizerService(shards=1) as service:
            service.submit(ec2.query, catalog=ec2.catalog).result()
            service.submit(ec1.query, catalog=ec1.catalog).result()
            stats = service.stats()
        assert sum(shard.sessions for shard in stats.shards) == 2

    def test_bounded_sessions_evict_lru(self):
        """max_sessions keeps the per-shard session registry bounded."""
        workloads = [build_ec2(1, 2, 1), build_ec1(2, 0), build_ec3(3, 0)]
        with OptimizerService(shards=1, max_sessions=2, max_inflight=1) as service:
            for workload in workloads:
                assert service.submit(workload.query, catalog=workload.catalog).result().ok
            stats = service.stats()
        assert stats.shards[0].sessions == 2
        assert stats.shards[0].sessions_evicted == 1
        assert stats.as_dict()["sessions_evicted"] == 1

    def test_evicted_session_restarts_cold_but_exact(self):
        first = build_ec2(1, 3, 1)
        second = build_ec1(2, 0)
        baseline = _single_shot(first, "fb")
        with OptimizerService(shards=1, max_sessions=1, max_inflight=1) as service:
            service.submit(first.query, catalog=first.catalog).result()
            service.submit(second.query, catalog=second.catalog).result()  # evicts `first`
            again = service.submit(first.query, catalog=first.catalog).result()
        assert again.metrics.cache_misses > 0  # cold again after eviction
        assert _signatures(again.result.plans) == _signatures(baseline.plans)

    def test_bounded_caches_report_evictions(self):
        workload = build_ec2(1, 3, 2)
        with OptimizerService(shards=1, max_cache_entries=2) as service:
            service.submit(workload.query, catalog=workload.catalog).result()
            stats = service.stats()
        assert stats.cache_evictions > 0
        assert all(shard.cache_entries <= 2 * shard.cache_caches for shard in stats.shards)


class TestShardingAndAdmission:
    def test_routing_is_deterministic(self):
        workload = build_ec2(1, 3, 1)
        constraints = list(workload.catalog.constraints())
        assert shard_index(constraints, 4) == shard_index(list(reversed(constraints)), 4)
        with OptimizerService(shards=4) as service:
            expected = service.shard_for(catalog=workload.catalog)
            response = service.submit(workload.query, catalog=workload.catalog).result()
        assert response.metrics.shard == expected

    def test_same_catalog_always_lands_on_the_same_shard(self):
        workload = build_ec3(3, 0)
        with OptimizerService(shards=3) as service:
            shards = {
                service.submit(workload.query, catalog=workload.catalog).result().metrics.shard
                for _ in range(3)
            }
        assert len(shards) == 1

    def test_submit_validates_strategy_and_constraints(self):
        workload = build_ec1(2, 0)
        with OptimizerService() as service:
            with pytest.raises(ValueError):
                service.submit(workload.query, strategy="nope", catalog=workload.catalog)
            with pytest.raises(ValueError):
                service.submit(workload.query)

    def test_engine_failures_resolve_as_error_responses(self):
        workload = build_ec1(2, 0)
        with OptimizerService() as service:
            # A broken query object makes the optimizer raise inside the
            # shard; the error comes back on the response instead of
            # poisoning the service.
            response = service.submit(object(), catalog=workload.catalog).result()
            assert not response.ok
            assert response.error
            with pytest.raises(RuntimeError):
                response.raise_for_error()
            # the service keeps serving afterwards
            ok = service.submit(workload.query, catalog=workload.catalog).result()
            assert ok.ok
            assert service.stats().errors == 1

    def test_submit_after_shutdown_raises(self):
        workload = build_ec1(2, 0)
        service = OptimizerService()
        service.shutdown()
        with pytest.raises(RuntimeError):
            service.submit(workload.query, catalog=workload.catalog)
        service.shutdown()  # idempotent


class TestBatchingAndMetrics:
    def test_concurrent_requests_share_waves(self):
        workload = build_ec2(1, 3, 2)
        other = build_ec2(2, 2, 1)
        with OptimizerService(shards=1, workers=2, max_inflight=4, batch_window=0.01) as service:
            futures = [
                service.submit(w.query, strategy=s, catalog=w.catalog)
                for _ in range(2)
                for w, s in [(workload, "fb"), (other, "oqf")]
            ]
            for future in futures:
                assert future.result().ok
            stats = service.stats()
        assert stats.waves > 0
        assert stats.cross_request_waves > 0
        assert stats.requests == 4

    def test_stats_surface(self):
        workload = build_ec1(2, 1)
        with OptimizerService(shards=2) as service:
            service.submit(workload.query, catalog=workload.catalog).result()
            stats = service.stats()
        assert stats.requests == 1
        assert 0.0 <= stats.cache_hit_rate <= 1.0
        assert stats.p50_latency > 0
        assert stats.p95_latency >= stats.p50_latency
        summary = stats.as_dict()
        assert summary["requests"] == 1
        assert summary["shards"] == 2
        assert summary["sessions"] == 1

    def test_result_records_scheduled_executor(self):
        workload = build_ec2(1, 3, 1)
        with OptimizerService(shards=1, workers=3) as service:
            response = service.submit(workload.query, catalog=workload.catalog).result()
        assert response.result.executor == "scheduled"
        assert response.result.workers == 3


class TestWaveScheduler:
    def test_batches_and_demuxes(self):
        scheduler = WaveScheduler(executor="threads", workers=2, batch_window=0.02)
        try:
            futures = {
                rid: scheduler.submit(rid, lambda x: x * 10, rid) for rid in range(8)
            }
            for rid, future in futures.items():
                assert future.result(timeout=5) == rid * 10
            stats = scheduler.stats()
            assert stats.items == 8
            assert stats.waves >= 1
            assert stats.cross_request_waves >= 1
        finally:
            scheduler.shutdown()

    def test_worker_exceptions_reach_the_future(self):
        scheduler = WaveScheduler(executor="serial")
        try:
            def boom(_):
                raise RuntimeError("kaput")

            future = scheduler.submit("r", boom, None)
            with pytest.raises(RuntimeError, match="kaput"):
                future.result(timeout=5)
        finally:
            scheduler.shutdown()

    def test_rejects_process_pools_and_submit_after_shutdown(self):
        with pytest.raises(ValueError):
            WaveScheduler(executor="processes")
        scheduler = WaveScheduler(executor="serial")
        scheduler.shutdown()
        with pytest.raises(RuntimeError):
            scheduler.submit("r", lambda x: x, 1)

    def test_scheduled_pool_demux_guard(self):
        """An outcome stamped with a foreign request id is rejected."""
        scheduler = WaveScheduler(executor="serial")
        try:
            pool = ScheduledPool(scheduler, request_id="mine")

            class FakeContext:
                request_id = None

            class FakeQuery:
                def restrict_to(self, key):
                    return None

            context = FakeContext()
            pool.start(context, cache=None)
            assert context.request_id == "mine"
            # sanity: a well-stamped wave passes through
            context.universal_plan = FakeQuery()
            context.original = None
            outcomes = pool.run_wave([frozenset({"x"})], deadline=None)
            assert all(outcome.request_id == "mine" for outcome in outcomes)
        finally:
            scheduler.shutdown()


class TestMetricsCollector:
    def test_latency_reservoir_is_bounded(self):
        from repro.service.metrics import MetricsCollector, RequestMetrics

        collector = MetricsCollector(max_samples=2)
        for number in range(5):
            collector.record(
                RequestMetrics(
                    request_id=number, shard=0, session="s", strategy="fb", latency=float(number)
                )
            )
        requests, errors, rejected, latencies = collector.snapshot()
        assert requests == 5  # exact totals
        assert errors == 0
        assert rejected == 0
        assert latencies == [3.0, 4.0]  # only the recent window is kept


class TestConstraintSignature:
    def test_order_insensitive(self):
        workload = build_ec2(1, 3, 1)
        constraints = list(workload.catalog.constraints())
        assert constraint_signature(constraints) == constraint_signature(
            list(reversed(constraints))
        )

    def test_rebuilt_workload_shares_a_session(self):
        """Two builds of the same config route to one warm session."""
        first = build_ec2(1, 3, 1)
        second = build_ec2(1, 3, 1)
        assert constraint_signature(first.catalog.constraints()) == constraint_signature(
            second.catalog.constraints()
        )
        with OptimizerService(shards=1) as service:
            service.submit(first.query, catalog=first.catalog).result()
            warm = service.submit(second.query, catalog=second.catalog).result()
            stats = service.stats()
        assert sum(shard.sessions for shard in stats.shards) == 1
        assert warm.metrics.cache_misses == 0


class TestSubmitMany:
    def test_submit_many_preserves_order(self):
        workload = build_ec1(2, 0)
        other = build_ec3(3, 0)
        with OptimizerService(shards=2, workers=2) as service:
            responses = service.submit_many(
                [
                    {"query": workload.query, "catalog": workload.catalog, "request_id": "a"},
                    {"query": other.query, "catalog": other.catalog, "request_id": "b"},
                    {"query": workload.query, "catalog": workload.catalog, "request_id": "c"},
                ]
            )
        assert [response.request_id for response in responses] == ["a", "b", "c"]
        assert all(response.ok for response in responses)


class TestConcurrentSubmitters:
    def test_many_client_threads(self):
        """Admission is thread-safe: N client threads hammer one service."""
        workload = build_ec2(1, 3, 1)
        baseline = _single_shot(workload, "fb")
        errors = []
        results = []
        with OptimizerService(shards=1, workers=2, max_inflight=4) as service:
            def client():
                try:
                    response = service.submit(
                        workload.query, catalog=workload.catalog
                    ).result()
                    results.append(response)
                except Exception as exc:  # noqa: BLE001 - collected for the assert
                    errors.append(exc)

            threads = [threading.Thread(target=client) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        assert len(results) == 6
        for response in results:
            assert _signatures(response.result.plans) == _signatures(baseline.plans)
