"""Unit and integration tests for the execution engine and cost model."""

import pytest

from repro.errors import ExecutionError
from repro.cq.query import PCQuery
from repro.engine.cost import CostModel
from repro.engine.database import Database
from repro.engine.executor import execute
from repro.engine.storage import Dictionary, Table
from repro.schema.catalog import Catalog


def q(text):
    return PCQuery.parse(text).validate()


@pytest.fixture
def small_database(star_catalog):
    database = Database(star_catalog)
    database.add_table(
        "R1",
        [
            {"K": 1, "F": 10, "A1": 100, "A2": 200, "A3": 300},
            {"K": 2, "F": 20, "A1": 101, "A2": 201, "A3": 301},
            {"K": 3, "F": 30, "A1": 999, "A2": 999, "A3": 999},
        ],
    )
    database.add_table("S11", [{"A": 100, "B": 7}, {"A": 101, "B": 8}])
    database.add_table("S12", [{"A": 200, "B": 5}, {"A": 201, "B": 6}])
    database.add_table("S13", [{"A": 300, "B": 1}, {"A": 301, "B": 2}])
    database.materialize_physical(star_catalog)
    return database


class TestStorage:
    def test_table_hash_index(self):
        table = Table("T", [{"A": 1, "B": 2}, {"A": 1, "B": 3}, {"A": 2, "B": 4}])
        assert len(table.lookup("A", 1)) == 2
        assert table.lookup("A", 99) == []

    def test_table_add_invalidates_index(self):
        table = Table("T", [{"A": 1}])
        assert len(table.lookup("A", 1)) == 1
        table.add({"A": 1})
        assert len(table.lookup("A", 1)) == 2

    def test_table_missing_attribute_raises(self):
        table = Table("T", [{"A": 1}])
        with pytest.raises(ExecutionError):
            table.hash_index("Z")

    def test_dictionary_membership_and_get(self):
        dictionary = Dictionary("M", {1: {"N": [2]}})
        assert 1 in dictionary
        assert dictionary.get(1) == {"N": [2]}
        assert dictionary.get(99) is None

    def test_database_unknown_collection(self):
        with pytest.raises(ExecutionError):
            Database().collection("missing")


class TestMaterialization:
    def test_views_are_materialized(self, small_database):
        view = small_database.collection("V11")
        assert isinstance(view, Table)
        # Rows 1 and 2 of R1 join both corners; row 3 joins nothing.
        assert sorted(row["K"] for row in view) == [1, 2]
        assert set(view.rows[0]) == {"K", "B1", "B2"}

    def test_statistics_are_refreshed(self, small_database, star_catalog):
        assert star_catalog.statistics.cardinality("R1") == 3
        assert star_catalog.statistics.cardinality("V11") == 2

    def test_index_materialization(self):
        catalog = Catalog()
        catalog.add_relation("R", ["K", "N"], key=["K"])
        catalog.add_primary_index("PI", "R", ["K"])
        database = Database(catalog)
        database.add_table("R", [{"K": 1, "N": 2}, {"K": 2, "N": 3}])
        database.materialize_physical()
        index = database.collection("PI")
        assert isinstance(index, Dictionary)
        assert index.get(1) == [{"K": 1, "N": 2}]


class TestExecutor:
    def test_selection_and_projection(self, small_database):
        rows = execute(q("select struct(K: r.K) from R1 r where r.A1 = 100"), small_database)
        assert rows == [{"K": 1}]

    def test_join_via_hash_probe(self, small_database):
        rows = execute(
            q("select struct(K: r.K, B: s.B) from R1 r, S11 s where r.A1 = s.A"),
            small_database,
        )
        assert sorted(row["K"] for row in rows) == [1, 2]

    def test_original_star_query(self, small_database, star_query):
        rows = execute(star_query, small_database)
        assert sorted((row["B1"], row["B2"], row["B3"]) for row in rows) == [(7, 5, 1), (8, 6, 2)]

    def test_view_plan_returns_same_rows(self, small_database, star_catalog, star_query):
        result = star_catalog  # catalog fixture reuse for clarity
        optimizer_plans = (
            __import__("repro.chase.optimizer", fromlist=["CBOptimizer"])
            .CBOptimizer(result)
            .optimize(star_query, "fb")
            .plans
        )
        reference = execute(star_query, small_database)
        reference_key = sorted(tuple(sorted(row.items())) for row in reference)
        for plan in optimizer_plans:
            rows = execute(plan.query, small_database)
            assert sorted(tuple(sorted(row.items())) for row in rows) == reference_key

    def test_dictionary_navigation(self):
        database = Database()
        database.add_dictionary("M1", {1: {"N": [10, 11]}, 2: {"N": []}})
        database.add_dictionary("M2", {10: {"P": [1]}, 11: {"P": [1]}})
        rows = execute(
            q("select struct(F: k, L: o) from dom M1 k, M1[k].N o"), database
        )
        assert sorted((row["F"], row["L"]) for row in rows) == [(1, 10), (1, 11)]

    def test_missing_lookup_yields_no_rows(self):
        database = Database()
        database.add_dictionary("M1", {1: {"N": [99]}})
        database.add_dictionary("M2", {10: {"P": []}})
        rows = execute(
            q("select struct(F: k, L: o2) from dom M1 k, M1[k].N o, M2[o].P o2"), database
        )
        assert rows == []

    def test_constant_condition_filtering(self, small_database):
        rows = execute(q("select struct(K: r.K) from R1 r where r.F = 20"), small_database)
        assert rows == [{"K": 2}]

    def test_cartesian_product_when_no_conditions(self, small_database):
        rows = execute(q("select struct(K: r.K, B: s.B) from R1 r, S11 s"), small_database)
        assert len(rows) == 6

    def test_unpopulated_collection_raises(self, small_database):
        with pytest.raises(ExecutionError):
            execute(q("select struct(X: t.X) from Missing t"), small_database)


class TestCostModel:
    def test_smaller_plan_is_cheaper(self, small_database, star_catalog, star_query):
        model = CostModel(star_catalog)
        from repro.chase.optimizer import CBOptimizer

        result = CBOptimizer(star_catalog).optimize(star_query, "fb")
        view_plan = next(p for p in result.plans if "V11" in p.collections_used())
        original_plan = next(p for p in result.plans if "V11" not in p.collections_used())
        assert model.cost(view_plan.query) < model.cost(original_plan.query)

    def test_best_plan_selection_uses_cost_model(self, small_database, star_catalog, star_query):
        from repro.chase.optimizer import CBOptimizer

        model = CostModel(star_catalog)
        result = CBOptimizer(star_catalog).optimize(star_query, "fb")
        best = result.best_plan(model)
        assert "V11" in best.query.collections_used()

    def test_equality_selectivity_reduces_cost(self, star_catalog):
        model = CostModel(star_catalog)
        star_catalog.statistics.set_cardinality("R1", 1000)
        star_catalog.statistics.set_distinct("R1", "A1", 100)
        filtered = q("select struct(K: r.K) from R1 r, S11 s where r.A1 = s.A")
        unfiltered = q("select struct(K: r.K) from R1 r, S11 s")
        assert model.cost(filtered) < model.cost(unfiltered)

    def test_cost_model_is_callable(self, star_catalog, star_query):
        model = CostModel(star_catalog)
        assert model(star_query) == model.cost(star_query)
