"""Concurrency stress for the socket front end and admission control.

Invariants locked down here:

* **Exactly one response per request.**  N client threads hammer the server
  past the admission limit; every request line resolves to exactly one
  typed record — ``ok`` or ``overloaded`` — and nothing hangs (all joins
  are bounded).
* **Metrics reconcile.**  The service's exact totals (``requests`` executed,
  ``rejected`` at admission) must add up to the responses the clients saw,
  and the queue gauge must respect its bound.
* **Typed, deterministic rejection.**  With a blocked runner and a queue
  depth of 1, the second submit is rejected synchronously with
  :class:`~repro.errors.ServiceOverloaded` (in-process) / a typed
  ``overloaded`` record (socket) — never queued, never silently dropped.
"""

import random
import threading

import pytest

from repro.errors import ServiceOverloaded
from repro.service import OptimizerClient, OptimizerServer, OptimizerService
from repro.workloads import build_ec2

#: Generous bound for every join in this module: a hang is a deadlock bug.
JOIN_TIMEOUT = 120.0

EC2_REQUEST = {
    "workload": "ec2",
    "params": {"stars": 1, "corners": 3, "views": 1},
    "strategy": "fb",
}


class TestSocketHammer:
    def test_hammer_past_admission_limit(self):
        """6 threads x 4 requests against queue depth 2: no deadlock, one
        typed response each, counters reconcile with what clients saw."""
        threads_n, per_thread = 6, 4
        statuses = []
        statuses_lock = threading.Lock()
        with OptimizerServer(
            shards=1, workers=1, max_inflight=1, max_queue_depth=2
        ) as server:
            with OptimizerClient(port=server.port) as client:

                def hammer():
                    for _ in range(per_thread):
                        record = client.request(dict(EC2_REQUEST), timeout=JOIN_TIMEOUT)
                        with statuses_lock:
                            statuses.append(record["status"])

                workers = [threading.Thread(target=hammer) for _ in range(threads_n)]
                for worker in workers:
                    worker.start()
                for worker in workers:
                    worker.join(timeout=JOIN_TIMEOUT)
                    assert not worker.is_alive(), "client thread deadlocked"
                stats = client.stats()

        total = threads_n * per_thread
        assert len(statuses) == total  # exactly one response per request
        assert set(statuses) <= {"ok", "overloaded"}
        ok = statuses.count("ok")
        overloaded = statuses.count("overloaded")
        # Reconciliation: every executed request was counted exactly once,
        # every shed request was rejected exactly once, nothing was lost.
        assert stats["requests"] == ok
        assert stats["rejected"] == overloaded
        assert stats["errors"] == 0
        assert ok + overloaded == total
        assert stats["queue_peak"] <= 2
        assert stats["queue_depth"] == 0  # fully drained

    def test_hammer_with_per_thread_connections(self):
        """Same invariants when every thread owns its own connection."""
        threads_n, per_thread = 4, 3
        statuses = []
        statuses_lock = threading.Lock()
        with OptimizerServer(
            shards=1, workers=1, max_inflight=1, max_queue_depth=2
        ) as server:

            def hammer():
                with OptimizerClient(port=server.port) as client:
                    for _ in range(per_thread):
                        record = client.request(dict(EC2_REQUEST), timeout=JOIN_TIMEOUT)
                        with statuses_lock:
                            statuses.append(record["status"])

            workers = [threading.Thread(target=hammer) for _ in range(threads_n)]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join(timeout=JOIN_TIMEOUT)
                assert not worker.is_alive(), "client thread deadlocked"
            stats = server.service.stats()

        total = threads_n * per_thread
        assert len(statuses) == total
        assert set(statuses) <= {"ok", "overloaded"}
        assert stats.requests == statuses.count("ok")
        assert stats.rejected == statuses.count("overloaded")


class TestSharedClientBackoffRng:
    def test_concurrent_retry_jitter_never_tears_the_rng(self):
        """The client is documented as thread-safe, and the hammer tests
        above share one instance across threads — so the backoff jitter's
        ``random.Random`` (which mutates internal state on every draw) must
        be lock-protected too.  With the lock, N threads drawing jitter
        concurrently produce exactly the seeded sequence, just reordered;
        the old unguarded RNG could interleave draws mid-update."""
        threads_n, draws_per_thread = 8, 250
        with OptimizerServer(shards=1, workers=1) as server:
            with OptimizerClient(port=server.port, backoff_seed=97) as client:
                draws = []
                draws_lock = threading.Lock()

                def draw():
                    for _ in range(draws_per_thread):
                        value = client._jitter()
                        with draws_lock:
                            draws.append(value)

                workers = [threading.Thread(target=draw) for _ in range(threads_n)]
                for worker in workers:
                    worker.start()
                for worker in workers:
                    worker.join(timeout=JOIN_TIMEOUT)
                    assert not worker.is_alive(), "jitter draw deadlocked"
        reference = random.Random(97)
        expected = sorted(reference.random() for _ in range(threads_n * draws_per_thread))
        assert sorted(draws) == expected


class TestDeterministicOverload:
    """Admission decisions pinned down with a runner blocked on an event."""

    @staticmethod
    def _blocking_optimizer(release, started):
        from repro.chase.optimizer import CBOptimizer

        class BlockingOptimizer(CBOptimizer):
            def optimize(self, query, **kwargs):
                started.set()
                assert release.wait(JOIN_TIMEOUT), "test never released the runner"
                return super().optimize(query, **kwargs)

        return BlockingOptimizer

    def test_in_process_rejection_is_synchronous_and_typed(self, monkeypatch):
        import repro.service.shard as shard_module

        release, started = threading.Event(), threading.Event()
        monkeypatch.setattr(
            shard_module, "CBOptimizer", self._blocking_optimizer(release, started)
        )
        workload = build_ec2(1, 3, 1)
        service = OptimizerService(
            shards=1, executor="serial", max_inflight=1, max_queue_depth=1
        )
        try:
            first = service.submit(workload.query, catalog=workload.catalog)
            # The slot is taken the moment submit returns (the gauge counts
            # queued + executing), so the rejection is deterministic.
            with pytest.raises(ServiceOverloaded) as excinfo:
                service.submit(workload.query, catalog=workload.catalog)
            assert excinfo.value.shard == 0
            assert excinfo.value.queue_depth == 1
            stats = service.stats()
            assert stats.rejected == 1
            assert stats.queue_depth == 1
            release.set()
            assert first.result(timeout=JOIN_TIMEOUT).ok
            # Capacity is released after completion: the next request admits.
            assert service.submit(workload.query, catalog=workload.catalog).result(
                timeout=JOIN_TIMEOUT
            ).ok
        finally:
            release.set()
            service.shutdown()

    def test_socket_rejection_is_typed(self, monkeypatch):
        import repro.service.shard as shard_module

        release, started = threading.Event(), threading.Event()
        monkeypatch.setattr(
            shard_module, "CBOptimizer", self._blocking_optimizer(release, started)
        )
        with OptimizerServer(
            shards=1, executor="serial", max_inflight=1, max_queue_depth=1
        ) as server:
            with OptimizerClient(port=server.port) as client:
                blocked = client.submit(dict(EC2_REQUEST))
                assert started.wait(JOIN_TIMEOUT)
                shed = client.request(dict(EC2_REQUEST), timeout=JOIN_TIMEOUT)
                assert shed["status"] == "overloaded"
                assert shed["shard"] == 0
                release.set()
                assert blocked.result(timeout=JOIN_TIMEOUT)["status"] == "ok"
