# Convenience targets for the chase & backchase reproduction.
#
# Everything pins PYTHONPATH=src (the package is a src-layout project and the
# test suites import `repro` directly).  `make test` is the fast unit suite;
# `make bench` regenerates every figure/table benchmark and refreshes
# BENCH_PR1.json / BENCH_PR2.json / BENCH_PR4.json / BENCH_PR5.json /
# BENCH_PR6.json; `make bench-quick` runs the parallel-backchase scaling at a
# reduced scale; `make serve-smoke` checks the in-process serving mode end
# to end and `make serve-net-smoke` the TCP front end (server + client over
# a real socket); `make chaos-smoke` kills a snapshotting server with
# SIGKILL mid-run and asserts the restart serves identical plans; `make
# serve-obs-smoke` runs a traced server with the HTTP observability sidecar
# and asserts /metrics, /healthz, /readyz, /stats and /traces via the
# obs-check subcommand; `make fleet-smoke` routes the workload through the
# consistent-hash fleet router in front of two backends, kills one backend
# with SIGKILL, and asserts the retrying client still passes --check via
# failover; `make tier1` is the full suite the CI driver runs.

PYTHON ?= python
PYTHONPATH := src

.PHONY: test bench bench-quick lint lint-concurrency serve-smoke serve-net-smoke chaos-smoke serve-obs-smoke fleet-smoke tier1 all

# Fast unit tests only (benchmarks are marked `bench` and deselected).
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q -m "not bench" tests

# Benchmark suite: reproduces the paper's figures/tables and writes
# BENCH_PR1.json / BENCH_PR2.json / BENCH_PR4.json / BENCH_PR5.json /
# BENCH_PR6.json with per-figure wall-clock and counters.
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q -m bench benchmarks

# Reduced-scale parallel-backchase scaling run (a few seconds end to end).
bench-quick:
	PYTHONPATH=$(PYTHONPATH) BENCH_QUICK=1 $(PYTHON) -m pytest -q -m bench benchmarks/test_bench_parallel_backchase.py

# Curated ruff lint (rule set lives in ruff.toml; CI installs ruff).
lint:
	$(PYTHON) -m ruff check src tests benchmarks examples

# repro-lint: the in-tree whole-program AST analyzer for concurrency and
# invariant bugs.  Module-scope rules (lock-discipline, pickle-safety,
# deadline-propagation, future-resolution, process-pool-boundary) plus
# project-scope rules over the whole-program model (lock-ordering,
# resource-lifecycle, metrics-conformance, protocol-conformance).  Emits
# clickable path:line:col findings; exits non-zero on anything not recorded
# in analysis-baseline.json.  No third-party deps — stdlib ast only.
lint-concurrency:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.analysis src/repro benchmarks examples \
		--baseline analysis-baseline.json

# Serving-mode smoke test: pipe the 10-request JSONL workload through the
# warm sharded service and assert every plan set matches a fresh single-shot
# CBOptimizer.optimize() (--check makes the CLI exit non-zero on mismatch).
serve-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli batch \
		--input benchmarks/workloads/serve_smoke.jsonl --output /dev/null \
		--shards 2 --workers 2 --check

# Network serving smoke test: start the TCP front end on an OS-assigned
# port, pipe the same JSONL workload through the socket client, and assert
# every response matches a fresh single-shot optimize (--check).  The server
# is killed with SIGTERM afterwards (graceful drain path).
serve-net-smoke:
	@rm -f .serve-net-smoke.port; \
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli serve --port 0 \
		--port-file .serve-net-smoke.port --shards 2 --workers 2 & \
	server_pid=$$!; \
	for i in $$(seq 1 100); do \
		[ -s .serve-net-smoke.port ] && break; sleep 0.1; \
	done; \
	[ -s .serve-net-smoke.port ] || { echo "server never bound"; kill $$server_pid; exit 1; }; \
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli client \
		--port $$(cat .serve-net-smoke.port) \
		--input benchmarks/workloads/serve_smoke.jsonl --output /dev/null --check; \
	status=$$?; \
	kill -TERM $$server_pid 2>/dev/null; wait $$server_pid 2>/dev/null; \
	rm -f .serve-net-smoke.port; \
	exit $$status

# Chaos smoke test: life 1 serves with a periodic cache snapshot AND
# injected response-write faults (deterministic seed), so the retrying
# client must replay dropped responses to pass --check; the server is then
# killed with SIGKILL — no drain, no final snapshot.  Life 2 restarts from
# whatever the background snapshot loop last wrote and must serve the same
# workload with every plan set still matching a fresh single-shot optimize.
chaos-smoke:
	@rm -f .chaos-smoke.port .chaos-smoke.snap; \
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli serve --port 0 \
		--port-file .chaos-smoke.port --shards 2 --workers 2 \
		--snapshot .chaos-smoke.snap --snapshot-interval 0.3 \
		--fault-spec "server.write:0.15:4" --fault-seed 7 & \
	server_pid=$$!; \
	for i in $$(seq 1 100); do \
		[ -s .chaos-smoke.port ] && break; sleep 0.1; \
	done; \
	[ -s .chaos-smoke.port ] || { echo "server never bound"; kill $$server_pid; exit 1; }; \
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli client \
		--port $$(cat .chaos-smoke.port) --retries 8 \
		--input benchmarks/workloads/serve_smoke.jsonl --output /dev/null --check \
		|| { echo "faulty life failed --check"; kill -9 $$server_pid; exit 1; }; \
	for i in $$(seq 1 100); do \
		[ -s .chaos-smoke.snap ] && break; sleep 0.1; \
	done; \
	[ -s .chaos-smoke.snap ] || { echo "no snapshot before crash"; kill -9 $$server_pid; exit 1; }; \
	kill -9 $$server_pid; wait $$server_pid 2>/dev/null; \
	rm -f .chaos-smoke.port; \
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli serve --port 0 \
		--port-file .chaos-smoke.port --shards 2 --workers 2 \
		--snapshot .chaos-smoke.snap & \
	server_pid=$$!; \
	for i in $$(seq 1 100); do \
		[ -s .chaos-smoke.port ] && break; sleep 0.1; \
	done; \
	[ -s .chaos-smoke.port ] || { echo "restart never bound"; kill $$server_pid; exit 1; }; \
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli client \
		--port $$(cat .chaos-smoke.port) --retries 8 \
		--input benchmarks/workloads/serve_smoke.jsonl --output /dev/null --check; \
	status=$$?; \
	kill -TERM $$server_pid 2>/dev/null; wait $$server_pid 2>/dev/null; \
	rm -f .chaos-smoke.port .chaos-smoke.snap; \
	exit $$status

# Observability smoke test: start a traced TCP server with the HTTP sidecar
# (both on OS-assigned ports), drive the JSONL workload through the socket
# client, then run `obs-check` against the sidecar — it exits non-zero
# unless /healthz and /readyz answer, /stats carries every stats field, and
# /metrics exposes every gauge plus the per-stage latency histograms.
serve-obs-smoke:
	@rm -f .serve-obs-smoke.port .serve-obs-smoke.http; \
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli serve --port 0 \
		--port-file .serve-obs-smoke.port --shards 2 --workers 2 \
		--trace --http-port 0 --http-port-file .serve-obs-smoke.http & \
	server_pid=$$!; \
	for i in $$(seq 1 100); do \
		[ -s .serve-obs-smoke.port ] && [ -s .serve-obs-smoke.http ] && break; sleep 0.1; \
	done; \
	{ [ -s .serve-obs-smoke.port ] && [ -s .serve-obs-smoke.http ]; } \
		|| { echo "server never bound"; kill $$server_pid; exit 1; }; \
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli client \
		--port $$(cat .serve-obs-smoke.port) \
		--input benchmarks/workloads/serve_smoke.jsonl --output /dev/null --check \
		|| { echo "client --check failed"; kill -TERM $$server_pid; exit 1; }; \
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli obs-check \
		--port $$(cat .serve-obs-smoke.http); \
	status=$$?; \
	kill -TERM $$server_pid 2>/dev/null; wait $$server_pid 2>/dev/null; \
	rm -f .serve-obs-smoke.port .serve-obs-smoke.http; \
	exit $$status

# Fleet smoke test: two backend servers behind the consistent-hash router
# (periodic cache/memo sync between them), the retrying client passes
# --check through the router, then one backend is killed with SIGKILL and a
# second pass must still verify every plan set — requests whose primary
# died fail over to the surviving replica (which the sync exchange has been
# keeping warm) instead of erroring.
fleet-smoke:
	@rm -f .fleet-smoke.b1 .fleet-smoke.b2 .fleet-smoke.router; \
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli serve --port 0 \
		--port-file .fleet-smoke.b1 --shards 1 --workers 2 & \
	b1_pid=$$!; \
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli serve --port 0 \
		--port-file .fleet-smoke.b2 --shards 1 --workers 2 & \
	b2_pid=$$!; \
	for i in $$(seq 1 100); do \
		[ -s .fleet-smoke.b1 ] && [ -s .fleet-smoke.b2 ] && break; sleep 0.1; \
	done; \
	{ [ -s .fleet-smoke.b1 ] && [ -s .fleet-smoke.b2 ]; } \
		|| { echo "backends never bound"; kill $$b1_pid $$b2_pid 2>/dev/null; exit 1; }; \
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli route --port 0 \
		--port-file .fleet-smoke.router --sync-interval 0.5 \
		--backend 127.0.0.1:$$(cat .fleet-smoke.b1) \
		--backend 127.0.0.1:$$(cat .fleet-smoke.b2) & \
	router_pid=$$!; \
	for i in $$(seq 1 100); do \
		[ -s .fleet-smoke.router ] && break; sleep 0.1; \
	done; \
	[ -s .fleet-smoke.router ] \
		|| { echo "router never bound"; kill $$router_pid $$b1_pid $$b2_pid 2>/dev/null; exit 1; }; \
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli client \
		--port $$(cat .fleet-smoke.router) --retries 8 \
		--input benchmarks/workloads/serve_smoke.jsonl --output /dev/null --check \
		|| { echo "full-fleet pass failed --check"; \
		     kill -9 $$router_pid $$b1_pid $$b2_pid 2>/dev/null; exit 1; }; \
	kill -9 $$b1_pid; wait $$b1_pid 2>/dev/null; \
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli client \
		--port $$(cat .fleet-smoke.router) --retries 8 \
		--input benchmarks/workloads/serve_smoke.jsonl --output /dev/null --check; \
	status=$$?; \
	kill -TERM $$router_pid $$b2_pid 2>/dev/null; \
	wait $$router_pid $$b2_pid 2>/dev/null; \
	rm -f .fleet-smoke.b1 .fleet-smoke.b2 .fleet-smoke.router; \
	exit $$status

# Everything, exactly as the tier-1 verification runs it.
tier1:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

all: tier1
