# Convenience targets for the chase & backchase reproduction.
#
# Everything pins PYTHONPATH=src (the package is a src-layout project and the
# test suites import `repro` directly).  `make test` is the fast unit suite;
# `make bench` regenerates every figure/table benchmark and refreshes
# BENCH_PR1.json; `make tier1` is the full suite the CI driver runs.

PYTHON ?= python
PYTHONPATH := src

.PHONY: test bench tier1 all

# Fast unit tests only (benchmarks are marked `bench` and deselected).
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q -m "not bench" tests

# Benchmark suite: reproduces the paper's figures/tables and writes
# BENCH_PR1.json with per-figure wall-clock and engine counters.
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q -m bench benchmarks

# Everything, exactly as the tier-1 verification runs it.
tier1:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

all: tier1
