# Convenience targets for the chase & backchase reproduction.
#
# Everything pins PYTHONPATH=src (the package is a src-layout project and the
# test suites import `repro` directly).  `make test` is the fast unit suite;
# `make bench` regenerates every figure/table benchmark and refreshes
# BENCH_PR1.json / BENCH_PR2.json / BENCH_PR4.json; `make bench-quick` runs
# just the parallel-backchase scaling benchmark at a reduced scale;
# `make serve-smoke` checks the serving mode end to end; `make tier1` is
# the full suite the CI driver runs.

PYTHON ?= python
PYTHONPATH := src

.PHONY: test bench bench-quick lint serve-smoke tier1 all

# Fast unit tests only (benchmarks are marked `bench` and deselected).
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q -m "not bench" tests

# Benchmark suite: reproduces the paper's figures/tables and writes
# BENCH_PR1.json / BENCH_PR2.json / BENCH_PR4.json with per-figure
# wall-clock and counters.
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q -m bench benchmarks

# Reduced-scale parallel-backchase scaling run (a few seconds end to end).
bench-quick:
	PYTHONPATH=$(PYTHONPATH) BENCH_QUICK=1 $(PYTHON) -m pytest -q -m bench benchmarks/test_bench_parallel_backchase.py

# Syntax/undefined-name lint (CI installs ruff; no-op rules beyond that).
lint:
	$(PYTHON) -m ruff check --select E9,F63,F7,F82 src tests benchmarks examples

# Serving-mode smoke test: pipe the 10-request JSONL workload through the
# warm sharded service and assert every plan set matches a fresh single-shot
# CBOptimizer.optimize() (--check makes the CLI exit non-zero on mismatch).
serve-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli batch \
		--input benchmarks/workloads/serve_smoke.jsonl --output /dev/null \
		--shards 2 --workers 2 --check

# Everything, exactly as the tier-1 verification runs it.
tier1:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

all: tier1
