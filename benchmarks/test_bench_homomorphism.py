"""Micro-benchmarks for the indexed hot paths of the C&B engine.

Two head-to-head comparisons, both asserting that the optimizations are pure
(identical results) and quantifying the win in closure-equality queries, the
machine-independent proxy for engine effort:

* indexed candidate lookup vs. the per-candidate scan over all target
  bindings in the homomorphism search;
* the incremental (semi-naive, trigger-indexed) chase vs. the original
  restart-per-step engine on the EC2 workload used by the time-per-plan
  experiments (Figure 7).
"""

import time

from conftest import ec2_universal_plan_and_constraint, record_bench

from repro.chase.chase import chase
from repro.cq.homomorphism import SearchStats, count_homomorphisms
from repro.workloads.ec2 import build_ec2


def test_indexed_vs_scan_candidate_lookup(benchmark):
    """Indexed candidate lookup finds the same homomorphisms with far fewer queries.

    The one-time index build (one root lookup per target binding) lives in
    the same process-wide cache as the target's shared congruence closure and
    is amortised over every search against the target, so the per-search
    counters below measure the steady-state lookup cost — which is what the
    5x claim is about: the backchase issues hundreds of searches per target.
    """
    universal, constraint = ec2_universal_plan_and_constraint()
    indexed_stats, scan_stats = SearchStats(), SearchStats()
    indexed = count_homomorphisms(
        constraint.universal, constraint.premise, universal, stats=indexed_stats, use_index=True
    )
    scanned = count_homomorphisms(
        constraint.universal, constraint.premise, universal, stats=scan_stats, use_index=False
    )
    assert indexed == scanned >= 1

    count = benchmark(
        lambda: count_homomorphisms(constraint.universal, constraint.premise, universal)
    )
    assert count == indexed
    record_bench(
        "homomorphism_candidate_lookup",
        counters={
            "indexed_closure_queries": indexed_stats.closure_queries,
            "scan_closure_queries": scan_stats.closure_queries,
            "indexed_candidates_tried": indexed_stats.candidates_tried,
            "scan_candidates_tried": scan_stats.candidates_tried,
            "index_build_queries": universal.size(),
            "query_reduction": round(
                scan_stats.closure_queries / max(1, indexed_stats.closure_queries), 2
            ),
        },
    )
    # The headline claim of this PR: candidate lookup stops paying one
    # closure query per target binding per search node.
    assert scan_stats.closure_queries >= 5 * indexed_stats.closure_queries


def test_incremental_vs_restart_chase(benchmark):
    """The semi-naive engine computes the identical universal plan much cheaper."""
    workload = build_ec2(stars=3, corners=5, views=3)
    constraints = workload.catalog.constraints()

    start = time.perf_counter()
    incremental = chase(workload.query, constraints, incremental=True)
    incremental_clock = time.perf_counter() - start
    start = time.perf_counter()
    restart = chase(workload.query, constraints, incremental=False, use_index=False)
    restart_clock = time.perf_counter() - start

    # Pure optimization: bit-identical universal plan and step sequence.
    assert incremental.query == restart.query
    assert [
        (step.dependency, step.added_variables, step.added_conditions)
        for step in incremental.steps
    ] == [
        (step.dependency, step.added_variables, step.added_conditions)
        for step in restart.steps
    ]
    assert incremental.counters.trigger_misses == 0

    result = benchmark(lambda: chase(workload.query, constraints))
    assert result.query == restart.query
    record_bench(
        "incremental_chase_tpp",
        counters={
            "incremental_wall_clock_s": round(incremental_clock, 6),
            "restart_wall_clock_s": round(restart_clock, 6),
            "incremental_closure_queries": incremental.counters.closure_queries,
            "restart_closure_queries": restart.counters.closure_queries,
            "query_reduction": round(
                restart.counters.closure_queries
                / max(1, incremental.counters.closure_queries),
                2,
            ),
            "deps_checked": incremental.counters.deps_checked,
            "deps_skipped": incremental.counters.deps_skipped,
            "trigger_misses": incremental.counters.trigger_misses,
            "steps_applied": incremental.applied,
        },
    )
    assert restart.counters.closure_queries >= 5 * incremental.counters.closure_queries
