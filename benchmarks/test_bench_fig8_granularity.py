"""Figure 8: the effect of stratification granularity on optimization time."""

from conftest import record_bench, report

from repro.experiments.figures import figure8_granularity
from repro.workloads.ec2 import build_ec2
from repro.workloads.ec3 import build_ec3


def test_fig8_stratification_granularity(benchmark):
    """Optimization time drops (roughly exponentially) as strata get smaller."""
    result = benchmark.pedantic(
        figure8_granularity,
        kwargs={
            "workloads": [
                ("EC3 with 4 classes", build_ec3(4)),
                ("EC3 with 5 classes", build_ec3(5)),
                ("EC2 [2,3,1]", build_ec2(2, 3, 1)),
            ],
            "timeout": 120,
        },
        iterations=1,
        rounds=1,
    )
    record_bench("fig8_granularity", result=result)
    report(result)
    # Stratum size 1 is the baseline (normalised to 1.0); the coarsest
    # grouping is the most expensive for each workload.
    first, last = result.rows[0], result.rows[-1]
    for column in range(1, len(first)):
        if isinstance(last[column], float):
            assert last[column] >= 1.0
