"""Fault-tolerance benchmark: crash recovery + retry overhead.

Runs the crash-recovery experiment (three service lives plus a faulty socket
phase, see :func:`repro.experiments.harness.measure_crash_recovery`) and
records into ``BENCH_PR6.json``:

* **recovery time** — snapshot load + replay seconds for a crash restart
  (recovering the mid-life "periodic" snapshot a ``kill -9`` would leave
  behind) and for a graceful restart (the drain-time snapshot);
* **warm-hit rates** — cache/memo hit rates for both restart flavours.  The
  crash restart is warm for every session the last background snapshot
  caught and cold for the tail, so its hit rate sits strictly between cold
  and graceful; the graceful restart replays essentially fully warm;
* **retry overhead** — p50/p95 request latency through the TCP front end,
  clean vs. under deterministic injected read/write faults with a retrying
  client.

Two hard correctness assertions back the numbers: neither a crash restart
nor client retries may change a single plan digest (``plans_match`` /
``retry_plans_match``).  ``BENCH_QUICK=1`` shrinks the mix and skips the
scale-sensitive bars.
"""

import os

from conftest import record_bench, report

from repro.experiments.figures import crash_recovery

BENCH_FILE = "BENCH_PR6.json"


def test_crash_recovery(benchmark):
    quick = bool(os.environ.get("BENCH_QUICK"))
    repeats = 2 if quick else 6  # 6 x 7-config mix = 42 requests
    result = benchmark.pedantic(
        crash_recovery,
        kwargs={"repeats": repeats, "shards": 2, "workers": 2, "timeout": 60},
        iterations=1,
        rounds=1,
    )
    report(result)
    measurement = result.measurement

    # Correctness differentials: crashes and retries change no plan.
    assert measurement.plans_match
    assert measurement.retry_plans_match
    assert measurement.errors == 0

    # The fault schedule is deterministic and non-empty: the faulty socket
    # pass really did lose responses, and the client really did replay.
    assert measurement.faults_injected > 0
    assert measurement.retry_replays >= measurement.faults_injected

    # The periodic snapshot fired mid-warm-up, so the crash restart is only
    # partially warm: strictly fewer sessions than the graceful snapshot,
    # and a cold tail the graceful restart does not have.
    assert 0 < measurement.sessions_periodic < measurement.sessions_graceful
    assert measurement.graceful_cache_misses == 0
    assert measurement.crash_cache_misses > measurement.graceful_cache_misses

    if not quick:
        assert measurement.request_count >= 40
        # Warm-hit bars: even the crash restart answers most fixpoints from
        # the snapshot; the graceful restart answers essentially all.
        assert measurement.crash_cache_hit_rate > 0.5
        assert measurement.graceful_cache_hit_rate > 0.9
        assert measurement.graceful_memo_hit_rate > 0.9
        # Recovering warm state must beat re-warming from scratch.  The bar
        # is on *work*, not wall clock (this container is noisy): the crash
        # restart recomputes only the fixpoints the periodic snapshot
        # missed, strictly fewer than the cold warming life did.
        assert measurement.crash_cache_misses < measurement.warm_cache_misses, (
            f"crash restart recomputed {measurement.crash_cache_misses} fixpoints, "
            f"not fewer than the cold warm-up's {measurement.warm_cache_misses}"
        )

    record_bench(
        "crash_recovery",
        wall_clock=measurement.warm_seconds
        + measurement.crash_load_seconds
        + measurement.crash_replay_seconds
        + measurement.graceful_load_seconds
        + measurement.graceful_replay_seconds,
        counters={
            "requests": measurement.request_count,
            "distinct_configs": measurement.distinct_configs,
            "shards": measurement.shards,
            "workers": measurement.workers,
            "warm_seconds": round(measurement.warm_seconds, 3),
            "warm_cache_misses": measurement.warm_cache_misses,
            "sessions_periodic": measurement.sessions_periodic,
            "sessions_graceful": measurement.sessions_graceful,
            "crash_load_seconds": round(measurement.crash_load_seconds, 3),
            "crash_replay_seconds": round(measurement.crash_replay_seconds, 3),
            "crash_cache_hit_rate": round(measurement.crash_cache_hit_rate, 4),
            "crash_memo_hit_rate": round(measurement.crash_memo_hit_rate, 4),
            "crash_cache_misses": measurement.crash_cache_misses,
            "graceful_load_seconds": round(measurement.graceful_load_seconds, 3),
            "graceful_replay_seconds": round(measurement.graceful_replay_seconds, 3),
            "graceful_cache_hit_rate": round(measurement.graceful_cache_hit_rate, 4),
            "graceful_memo_hit_rate": round(measurement.graceful_memo_hit_rate, 4),
            "graceful_cache_misses": measurement.graceful_cache_misses,
            "retry_requests": measurement.retry_requests,
            "retry_replays": measurement.retry_replays,
            "faults_injected": measurement.faults_injected,
            "retry_clean_p50_ms": round(measurement.retry_clean_p50 * 1000, 2),
            "retry_clean_p95_ms": round(measurement.retry_clean_p95 * 1000, 2),
            "retry_faulty_p50_ms": round(measurement.retry_faulty_p50 * 1000, 2),
            "retry_faulty_p95_ms": round(measurement.retry_faulty_p95 * 1000, 2),
            "retry_overhead_p50_ms": round(measurement.retry_overhead_p50 * 1000, 2),
            "retry_overhead_p95_ms": round(measurement.retry_overhead_p95 * 1000, 2),
            "plans_match": measurement.plans_match,
            "retry_plans_match": measurement.retry_plans_match,
            "quick_mode": quick,
        },
        result=result,
        bench_file=BENCH_FILE,
        cpu_count=os.cpu_count(),
    )
