"""Ablation benchmarks for the implementation techniques of Section 3.1.

These do not correspond to a figure in the paper; they quantify the design
choices DESIGN.md calls out: incremental homomorphism pruning, indexed
candidate lookup, the incremental (semi-naive) chase engine and chase-result
memoisation in the backchase.  Every ablation pins the optimized and the
ablated configuration to identical results before comparing costs, and the
measured counters are recorded into ``BENCH_PR1.json``.
"""

import time

from conftest import ec2_universal_plan_and_constraint, record_bench

from repro.chase.chase import chase
from repro.chase.implication import ChaseCache
from repro.cq.homomorphism import SearchStats, count_homomorphisms
from repro.workloads.ec1 import build_ec1
from repro.workloads.ec2 import build_ec2
from repro.workloads.ec3 import build_ec3


def test_homomorphism_search_with_pruning(benchmark):
    """Incremental equality pruning (the paper's technique) on a large universal plan."""
    universal, constraint = ec2_universal_plan_and_constraint()
    stats = SearchStats()
    count_homomorphisms(constraint.universal, constraint.premise, universal, stats=stats)
    count = benchmark(
        lambda: count_homomorphisms(constraint.universal, constraint.premise, universal)
    )
    assert count >= 1
    record_bench(
        "ablation_pruned_search",
        counters={
            "closure_queries": stats.closure_queries,
            "candidates_tried": stats.candidates_tried,
        },
    )


def test_homomorphism_search_without_pruning(benchmark):
    """The naive generate-and-test search, for comparison with the pruned version."""
    universal, constraint = ec2_universal_plan_and_constraint()
    stats = SearchStats()
    count_homomorphisms(
        constraint.universal, constraint.premise, universal, stats=stats, prune_early=False
    )
    count = benchmark(
        lambda: count_homomorphisms(
            constraint.universal, constraint.premise, universal, prune_early=False
        )
    )
    assert count >= 1
    record_bench(
        "ablation_naive_search",
        counters={
            "closure_queries": stats.closure_queries,
            "candidates_tried": stats.candidates_tried,
        },
    )


def test_chase_cache_reuse(benchmark):
    """Chase-result memoisation across the repeated subquery chases of the backchase."""
    workload = build_ec2(stars=1, corners=4, views=2)
    constraints = workload.catalog.constraints()
    universal = chase(workload.query, constraints).query

    def chase_subqueries_twice():
        cache = ChaseCache(constraints)
        variables = universal.variable_set
        for var in sorted(variables):
            subquery = universal.restrict_to(variables - {var})
            if subquery is not None:
                cache.chase(subquery)
                cache.chase(subquery)
        return cache

    cache = benchmark(chase_subqueries_twice)
    assert cache.hits >= cache.misses
    record_bench(
        "ablation_chase_cache",
        counters={
            "hits": cache.hits,
            "misses": cache.misses,
            "miss_closure_queries": cache.counters.closure_queries,
        },
    )


def test_engine_vs_seed_on_all_workload_classes(benchmark):
    """Indexed + incremental engine vs the seed engine on EC1/EC2/EC3 chases.

    The seed configuration (``incremental=False, use_index=False``) restarts
    the closure on every step and scans every target binding per candidate;
    the optimized engine must produce the bit-identical universal plan while
    spending at least 5x fewer closure-equality queries on every workload
    class (wall-clock is recorded too but only asserted loosely, since the
    suite runs on shared hardware).
    """
    workloads = [
        ("ec1[5,4]", build_ec1(5, 4)),
        ("ec2[2,4,2]", build_ec2(2, 4, 2)),
        ("ec3[6]", build_ec3(6, 2)),
    ]
    counters = {}
    for label, workload in workloads:
        constraints = workload.catalog.constraints()
        start = time.perf_counter()
        optimized = chase(workload.query, constraints)
        optimized_clock = time.perf_counter() - start
        start = time.perf_counter()
        seed = chase(workload.query, constraints, incremental=False, use_index=False)
        seed_clock = time.perf_counter() - start
        assert optimized.query == seed.query
        assert optimized.applied == seed.applied
        reduction = seed.counters.closure_queries / max(1, optimized.counters.closure_queries)
        counters[label] = {
            "optimized_wall_clock_s": round(optimized_clock, 6),
            "seed_wall_clock_s": round(seed_clock, 6),
            "optimized_closure_queries": optimized.counters.closure_queries,
            "seed_closure_queries": seed.counters.closure_queries,
            "query_reduction": round(reduction, 2),
            "trigger_misses": optimized.counters.trigger_misses,
        }
        assert reduction >= 5.0, f"{label}: only {reduction:.1f}x fewer closure queries"

    workload = workloads[1][1]
    constraints = workload.catalog.constraints()
    result = benchmark(lambda: chase(workload.query, constraints))
    assert result.applied >= 1
    record_bench("ablation_engine_vs_seed", counters=counters)
