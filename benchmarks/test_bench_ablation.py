"""Ablation benchmarks for the implementation techniques of Section 3.1.

These do not correspond to a figure in the paper; they quantify the design
choices DESIGN.md calls out: incremental homomorphism pruning and chase-result
memoisation in the backchase.
"""

from repro.chase.chase import chase
from repro.chase.implication import ChaseCache
from repro.cq.homomorphism import count_homomorphisms
from repro.workloads.ec2 import build_ec2


def _universal_plan_and_constraint():
    workload = build_ec2(stars=2, corners=4, views=2)
    constraints = workload.catalog.constraints()
    universal = chase(workload.query, constraints).query
    view_forward = next(dep for dep in constraints if dep.name.endswith("_fwd"))
    return universal, view_forward


def test_homomorphism_search_with_pruning(benchmark):
    """Incremental equality pruning (the paper's technique) on a large universal plan."""
    universal, constraint = _universal_plan_and_constraint()
    count = benchmark(
        lambda: count_homomorphisms(constraint.universal, constraint.premise, universal)
    )
    assert count >= 1


def test_homomorphism_search_without_pruning(benchmark):
    """The naive generate-and-test search, for comparison with the pruned version."""
    universal, constraint = _universal_plan_and_constraint()
    count = benchmark(
        lambda: count_homomorphisms(
            constraint.universal, constraint.premise, universal, prune_early=False
        )
    )
    assert count >= 1


def test_chase_cache_reuse(benchmark):
    """Chase-result memoisation across the repeated subquery chases of the backchase."""
    workload = build_ec2(stars=1, corners=4, views=2)
    constraints = workload.catalog.constraints()
    universal = chase(workload.query, constraints).query

    def chase_subqueries_twice():
        cache = ChaseCache(constraints)
        variables = universal.variable_set
        for var in sorted(variables):
            subquery = universal.restrict_to(variables - {var})
            if subquery is not None:
                cache.chase(subquery)
                cache.chase(subquery)
        return cache

    cache = benchmark(chase_subqueries_twice)
    assert cache.hits >= cache.misses
