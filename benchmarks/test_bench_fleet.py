"""Fleet benchmark: routed throughput and cross-process cache movement.

Runs the mixed EC1/EC2/EC3 request mix through a consistent-hash
:class:`~repro.service.fleet.FleetRouter` in front of two real TCP backends,
then drives one ``sync`` exchange round and probes each catalog on the
backend that did *not* compute it.  Records into ``BENCH_PR10.json``:

* **fleet vs single-shot** — identical plan-set digests (the differential
  bar) plus both wall clocks;
* **cross-process warm-hit rate** — the fraction of catalogs whose first
  request on the *peer* backend hit chase-cache or containment-memo state
  it never computed locally (must be > 0 after one exchange round: that is
  the whole point of the sync op);
* router gauges (routed / rerouted / shed) and sessions moved by the round.

``BENCH_QUICK=1`` shrinks the routed phase to one round of the mix.
"""

import os
import time

from conftest import record_bench

from repro.chase.implication import constraints_digest
from repro.service import OptimizerClient, OptimizerServer
from repro.service.fleet import FleetRouter, parse_backend
from repro.service.protocol import WORKLOAD_BUILDERS, plan_digest

BENCH_FILE = "BENCH_PR10.json"

#: The differential request mix: every workload family, every strategy.
MIX = [
    ("ec1", {"relations": 2, "secondary_indexes": 1}, "fb"),
    ("ec1", {"relations": 3, "secondary_indexes": 0}, "ocs"),
    ("ec2", {"stars": 1, "corners": 3, "views": 1}, "fb"),
    ("ec2", {"stars": 1, "corners": 3, "views": 2}, "oqf"),
    ("ec3", {"classes": 3, "asrs": 0}, "fb"),
    ("ec3", {"classes": 3, "asrs": 1}, "ocs"),
]


def _records(rounds):
    records = []
    for round_index in range(rounds):
        for index, (name, params, strategy) in enumerate(MIX):
            records.append(
                {
                    "id": f"b{round_index}-{index}",
                    "workload": name,
                    "params": dict(params),
                    "strategy": strategy,
                }
            )
    return records


def _run_fleet(rounds):
    """The measured scenario; returns a dict of counters."""
    single_start = time.perf_counter()
    reference = []
    for name, params, strategy in MIX:
        builder, _ = WORKLOAD_BUILDERS[name]
        workload = builder(**params)
        result = workload.optimizer().optimize(workload.query, strategy=strategy)
        reference.append(plan_digest(result.plans))
    single_shot_wall = time.perf_counter() - single_start

    with OptimizerServer(shards=1, workers=2) as server_a:
        with OptimizerServer(shards=1, workers=2) as server_b:
            servers = {
                f"127.0.0.1:{server_a.port}": server_a,
                f"127.0.0.1:{server_b.port}": server_b,
            }
            with FleetRouter(list(servers)) as router:
                routed_start = time.perf_counter()
                with OptimizerClient(port=router.port) as client:
                    responses = client.request_many(_records(rounds), timeout=600)
                fleet_wall = time.perf_counter() - routed_start
                assert all(r["status"] == "ok" for r in responses)
                fleet_digests = [r["plan_digests"] for r in responses]
                digests_match = fleet_digests == reference * rounds

                # One exchange round over the router's own backend clients.
                exchanger = router.attach_exchanger()
                sessions_moved = exchanger.run_once(timeout=600)

                # Probe every catalog on the backend that did NOT serve it:
                # after the sync round its first contact must already be warm.
                warm_hits = 0
                peer_digests_match = True
                peer_clients = {}
                try:
                    for index, (name, params, strategy) in enumerate(MIX):
                        builder, _ = WORKLOAD_BUILDERS[name]
                        workload = builder(**params)
                        digest = constraints_digest(workload.catalog.constraints())
                        peer = router.ring.preference(digest)[1]
                        if peer not in peer_clients:
                            host, port = parse_backend(peer)
                            peer_clients[peer] = OptimizerClient(host=host, port=port)
                        response = peer_clients[peer].request(
                            {
                                "id": f"p{index}",
                                "workload": name,
                                "params": dict(params),
                                "strategy": strategy,
                            },
                            timeout=600,
                        )
                        assert response["status"] == "ok"
                        if response["plan_digests"] != reference[index]:
                            peer_digests_match = False
                        if response["cache_hits"] > 0 or response["memo_hits"] > 0:
                            warm_hits += 1
                finally:
                    for peer_client in peer_clients.values():
                        peer_client.close()
                stats = router.stats()
                merged_totals = sum(
                    server.service.stats().sync_sessions_merged
                    for server in servers.values()
                )
    return {
        "requests_routed": stats.routed,
        "rerouted": stats.rerouted,
        "shed": stats.shed,
        "errors": stats.errors,
        "digests_match": digests_match,
        "peer_digests_match": peer_digests_match,
        "sync_sessions_moved": sessions_moved,
        "sync_sessions_merged": merged_totals,
        "cross_process_warm_hits": warm_hits,
        "cross_process_warm_hit_rate": round(warm_hits / len(MIX), 4),
        "single_shot_wall_s": round(single_shot_wall, 4),
        "fleet_wall_s": round(fleet_wall, 4),
    }


def test_fleet_router_and_sync(benchmark):
    quick = bool(os.environ.get("BENCH_QUICK"))
    rounds = 1 if quick else 2
    start = time.perf_counter()
    measurement = benchmark.pedantic(
        _run_fleet, kwargs={"rounds": rounds}, iterations=1, rounds=1
    )
    wall_clock = time.perf_counter() - start

    # The differential bar: the fleet is invisible to plan quality.
    assert measurement["digests_match"]
    assert measurement["peer_digests_match"]
    assert measurement["errors"] == 0
    assert measurement["shed"] == 0
    assert measurement["requests_routed"] == rounds * len(MIX)

    # The tentpole claim: after one exchange round, peers serve warm state
    # they never computed — the cross-process warm-hit rate is positive.
    assert measurement["sync_sessions_moved"] >= 1
    assert measurement["cross_process_warm_hit_rate"] > 0

    record_bench(
        "fleet_router_sync",
        wall_clock=wall_clock,
        counters=measurement,
        backends=2,
        rounds=rounds,
        requests=rounds * len(MIX),
        bench_file=BENCH_FILE,
    )
