"""Figure 6: optimization time per generated plan on EC1 and EC3."""

import time

from conftest import record_bench, report

from repro.experiments.figures import figure6_ec1, figure6_ec3


def test_fig6_ec1_time_per_plan(benchmark):
    """FB's time per plan grows quickly with secondary indexes; OQF/OCS stay flat."""
    result = benchmark.pedantic(
        figure6_ec1,
        kwargs={"settings": ((3, 0), (3, 1), (3, 2), (4, 0)), "timeout": 60},
        iterations=1,
        rounds=1,
    )
    record_bench("fig6_ec1", result=result)
    report(result)
    # Shape check: on the hardest setting FB is at least as slow per plan as
    # OQF, and OQF stays below one second per plan.
    hardest = result.rows[2]
    assert hardest[1] >= hardest[2]
    assert all(row[2] < 5 for row in result.rows)


def test_fig6_ec3_time_per_plan(benchmark):
    """On EC3, OCS's per-plan cost stays low while FB grows with the path length."""
    start = time.perf_counter()
    result = benchmark.pedantic(
        figure6_ec3, kwargs={"class_counts": (2, 3, 4, 5), "timeout": 60}, iterations=1, rounds=1
    )
    record_bench("fig6_ec3", wall_clock=time.perf_counter() - start, result=result)
    report(result)
    last = result.rows[-1]
    assert last[2] <= last[1] or last[1] == 0  # OCS <= FB per plan on the largest query
