"""Figure 10: end-to-end time reduction (optimization + execution) on EC2."""

from conftest import record_bench, report

from repro.experiments.figures import figure10_time_reduction


def test_fig10_time_reduction(benchmark):
    """Redux is large and positive for moderate configurations; ReduxFirst extends the range."""
    result = benchmark.pedantic(
        figure10_time_reduction,
        kwargs={"points": ((2, 2, 1), (2, 3, 1), (3, 2, 1), (3, 3, 1)), "size": 10000},
        iterations=1,
        rounds=1,
    )
    record_bench("fig10_time_reduction", result=result)
    report(result)
    reduxes = [row[5] for row in result.rows]
    redux_firsts = [row[6] for row in result.rows]
    # ReduxFirst dominates Redux (it charges less optimization time) and the
    # easy configurations show a clear positive reduction.
    assert all(rf >= r for r, rf in zip(reduxes, redux_firsts))
    assert max(redux_firsts) > 0.5
    assert max(reduxes) > 0.3
