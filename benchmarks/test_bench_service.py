"""Serving benchmark: warm sharded service vs. cold per-call optimization.

Runs the mixed EC1/EC2/EC3 request mix (7 distinct (workload, strategy)
configurations, interleaved) through a long-lived
:class:`~repro.service.OptimizerService` and compares it against the cold
baseline that builds a fresh :class:`~repro.chase.optimizer.CBOptimizer` per
request.  Two claims are checked and recorded into ``BENCH_PR4.json``:

* **correctness** — every service response's plan set is signature-identical
  to its cold single-shot twin (hard assertion);
* **throughput** — with ``repeats`` rounds over the same catalogs the warm
  caches turn most chases into hits, so service throughput must be at least
  1.5x the cold baseline (asserted at the default scale: >= 50 requests).

``BENCH_QUICK=1`` shrinks the run to 3 rounds (21 requests) and records the
numbers without the speedup assertion (too little warm-up to be meaningful).
"""

import os

from conftest import record_bench, report

from repro.experiments.figures import service_throughput

BENCH_FILE = "BENCH_PR4.json"


def test_service_throughput(benchmark):
    quick = bool(os.environ.get("BENCH_QUICK"))
    repeats = 3 if quick else 8  # 8 x 7-config mix = 56 requests
    result = benchmark.pedantic(
        service_throughput,
        kwargs={"repeats": repeats, "shards": 2, "workers": 2, "timeout": 60},
        iterations=1,
        rounds=1,
    )
    report(result)
    measurement = result.measurement

    # Correctness: the service never changes a plan set.
    assert measurement.plans_match
    assert measurement.errors == 0

    if not quick:
        assert measurement.request_count >= 50
        # The acceptance bar: warm serving beats cold per-call by >= 1.5x on
        # this container (the mix revisits each catalog `repeats` times, so
        # all but the first round of chases are cache hits).
        assert measurement.speedup >= 1.5, (
            f"warm service speedup {measurement.speedup:.2f}x < 1.5x "
            f"(cold {measurement.cold_seconds:.2f}s, warm {measurement.warm_seconds:.2f}s)"
        )
        assert measurement.cache_hit_rate > 0.5

    record_bench(
        "service_throughput",
        wall_clock=measurement.cold_seconds + measurement.warm_seconds,
        counters={
            "requests": measurement.request_count,
            "distinct_configs": measurement.distinct_configs,
            "shards": measurement.shards,
            "workers": measurement.workers,
            "cold_qps": round(measurement.cold_qps, 3),
            "warm_qps": round(measurement.warm_qps, 3),
            "speedup_warm_vs_cold": round(measurement.speedup, 3),
            "cache_hit_rate": round(measurement.cache_hit_rate, 4),
            "cache_evictions": measurement.cache_evictions,
            "waves": measurement.waves,
            "cross_request_waves": measurement.cross_request_waves,
            "cold_p50_s": round(measurement.cold_p50, 6),
            "cold_p95_s": round(measurement.cold_p95, 6),
            "warm_p50_s": round(measurement.warm_p50, 6),
            "warm_p95_s": round(measurement.warm_p95, 6),
            "plans_match": measurement.plans_match,
            "quick_mode": quick,
        },
        result=result,
        bench_file=BENCH_FILE,
        cpu_count=os.cpu_count(),
    )
