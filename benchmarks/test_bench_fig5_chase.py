"""Figure 5: feasibility of the chase (all three experimental configurations)."""

import time

from conftest import record_bench, report

from repro.experiments.figures import figure5_ec1, figure5_ec2, figure5_ec3


def test_fig5_ec1_chase_time(benchmark):
    """Chase time as the number of EC1 indexes grows (Figure 5, left)."""
    start = time.perf_counter()
    result = benchmark.pedantic(
        figure5_ec1, kwargs={"settings": ((3, 2), (5, 4), (7, 6))}, iterations=1, rounds=1
    )
    record_bench("fig5_ec1", wall_clock=time.perf_counter() - start, result=result)
    report(result)
    times = [row[3] for row in result.rows]
    assert all(time < 30 for time in times)
    assert times == sorted(times) or max(times) < 5  # grows smoothly / stays small


def test_fig5_ec2_chase_time(benchmark):
    """Chase time as the EC2 query size grows, for two constraint counts."""
    start = time.perf_counter()
    result = benchmark.pedantic(
        figure5_ec2,
        kwargs={"stars": 3, "corner_range": (3, 4, 5), "views_options": (2, 3)},
        iterations=1,
        rounds=1,
    )
    record_bench("fig5_ec2", wall_clock=time.perf_counter() - start, result=result)
    report(result)
    assert len(result.rows) == 3


def test_fig5_ec3_chase_time(benchmark):
    """Chase time as the number of EC3 classes grows (Figure 5, right)."""
    start = time.perf_counter()
    result = benchmark.pedantic(
        figure5_ec3, kwargs={"class_counts": (2, 4, 6, 8)}, iterations=1, rounds=1
    )
    record_bench("fig5_ec3", wall_clock=time.perf_counter() - start, result=result)
    report(result)
    assert all(row[2] < 30 for row in result.rows)
