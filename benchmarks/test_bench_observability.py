"""Observability benchmark: the per-stage latency breakdown of traced serving.

Runs the mixed EC1/EC2/EC3 request mix through a *traced*
:class:`~repro.service.OptimizerService` on the serial executor and records
where the wall clock goes, stage by stage (admission wait, shard queue,
chase fixpoints, containment checks, restrict calls, serialization), into
``BENCH_PR9.json``.  Two claims are checked:

* **bounded** — per request, the billed stage seconds sum to at most the
  measured request latency (serial executor: stages are disjoint wall-clock
  slices);
* **attribution** — the engine stages (chase + containment + restrict)
  dominate the non-queueing time: tracing must explain where requests spend
  their time, not just wrap them.

``BENCH_QUICK=1`` shrinks the run to 2 rounds (14 requests).
"""

import os

from conftest import record_bench, report

from repro.experiments.figures import stage_breakdown

BENCH_FILE = "BENCH_PR9.json"


def test_stage_breakdown(benchmark):
    quick = bool(os.environ.get("BENCH_QUICK"))
    repeats = 2 if quick else 6  # 6 x 7-config mix = 42 requests
    result = benchmark.pedantic(
        stage_breakdown,
        kwargs={"repeats": repeats, "shards": 1, "timeout": 60},
        iterations=1,
        rounds=1,
    )
    report(result)
    measurement = result.measurement

    # Every request carried a span tree, and every span tree respected the
    # tentpole invariant: sum(stage seconds) <= request duration.
    assert measurement.traced == measurement.request_count
    assert measurement.bounded
    assert measurement.errors == 0
    assert set(measurement.stage_seconds) == {
        "admission_wait",
        "queue_wait",
        "chase",
        "containment",
        "restrict",
        "serialize",
    }

    # Attribution: the engine stages explain most of the non-queue time
    # (queue_wait is load, not work — it scales with how fast the loop
    # submits, so it is excluded from the attribution bar).
    engine = sum(
        measurement.stage_seconds[stage] for stage in ("chase", "containment", "restrict")
    )
    overhead = (
        measurement.stage_seconds["admission_wait"]
        + measurement.stage_seconds["serialize"]
    )
    assert engine > overhead

    record_bench(
        "stage_breakdown",
        wall_clock=measurement.total_duration,
        counters={
            "requests": measurement.request_count,
            "distinct_configs": measurement.distinct_configs,
            "traced": measurement.traced,
            "accounted_fraction": round(measurement.accounted_fraction, 4),
            "bounded": measurement.bounded,
            "stage_seconds": {
                stage: round(seconds, 6)
                for stage, seconds in sorted(measurement.stage_seconds.items())
            },
            "stage_counts": dict(sorted(measurement.stage_counts.items())),
        },
        result=result,
        bench_file=BENCH_FILE,
    )
