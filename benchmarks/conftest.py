"""Shared configuration for the benchmark suite.

Every benchmark regenerates one table or figure of the paper's evaluation and
prints the measured rows (the same rows/series the paper reports) so the
output can be compared against EXPERIMENTS.md.  The scales are reduced from
the paper's so the whole suite runs in minutes on a laptop; the shapes are
what matters.

Besides the printed tables, each benchmark records a machine-readable entry
(figure name -> wall clock + counters/rows) via :func:`record_bench`; at the
end of the session everything recorded is merged into a ``BENCH_*.json``
file at the repository root (``BENCH_PR1.json`` by default; the parallel
backchase scaling benchmark writes ``BENCH_PR2.json``), so the perf
trajectory (wall clock, closure queries, cache hit rates, speedups) can be
tracked across PRs.

All tests collected from this directory are marked ``bench`` so the fast
tier-1 suite can deselect them with ``-m "not bench"`` (see the Makefile).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BENCH_FILE = "BENCH_PR1.json"

#: bench file name -> {figure -> entry}
_RECORDED = {}


def ec2_universal_plan_and_constraint(stars=2, corners=4, views=2):
    """Shared fixture for the search micro-benchmarks and ablations.

    Builds the EC2 workload, chases it to the universal plan, and returns the
    plan together with the first forward view constraint (the homomorphism
    source the candidate-lookup comparisons search with).
    """
    from repro.chase.chase import chase
    from repro.workloads.ec2 import build_ec2

    workload = build_ec2(stars=stars, corners=corners, views=views)
    constraints = workload.catalog.constraints()
    universal = chase(workload.query, constraints).query
    view_forward = next(dep for dep in constraints if dep.name.endswith("_fwd"))
    return universal, view_forward


def report(result):
    """Print an experiment result table underneath the benchmark output."""
    print()
    print(result.render())
    print()


def record_bench(figure, wall_clock=None, counters=None, result=None, bench_file=DEFAULT_BENCH_FILE, **extra):
    """Record one figure's measurements for a root ``BENCH_*.json`` file.

    Parameters
    ----------
    figure:
        Key in the JSON file (e.g. ``"fig5_ec1"``).
    wall_clock:
        Wall-clock seconds for the whole figure, if measured.
    counters:
        Dict of machine-independent work counters (closure queries, cache
        hits, ratios, ...).
    result:
        Optional :class:`~repro.experiments.figures.ExperimentResult`; its
        headers and rows are embedded so the JSON is self-describing.
    bench_file:
        File name (relative to the repository root) the entry is merged
        into; defaults to ``BENCH_PR1.json``.
    extra:
        Any further JSON-serializable fields.
    """
    entry = dict(extra)
    if wall_clock is not None:
        entry["wall_clock_s"] = round(wall_clock, 6)
    if counters:
        entry["counters"] = counters
    if result is not None:
        entry["headers"] = list(result.headers)
        entry["rows"] = [list(row) for row in result.rows]
    _RECORDED.setdefault(bench_file, {})[figure] = entry


def pytest_collection_modifyitems(items):
    bench_dir = str(Path(__file__).resolve().parent)
    for item in items:
        if str(item.fspath).startswith(bench_dir):
            item.add_marker(pytest.mark.bench)


def pytest_sessionfinish(session, exitstatus):
    # Only persist measurements from a fully passing session: a failed run's
    # counters would overwrite the good entries the files exist to track.
    if not _RECORDED or exitstatus != 0:
        return
    for bench_file, entries in _RECORDED.items():
        path = ROOT / bench_file
        merged = {}
        if path.exists():
            try:
                merged = json.loads(path.read_text())
            except (OSError, ValueError):
                merged = {}
        merged.update(entries)
        path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
