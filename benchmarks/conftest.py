"""Shared configuration for the benchmark suite.

Every benchmark regenerates one table or figure of the paper's evaluation and
prints the measured rows (the same rows/series the paper reports) so the
output can be compared against EXPERIMENTS.md.  The scales are reduced from
the paper's so the whole suite runs in minutes on a laptop; the shapes are
what matters.
"""

from __future__ import annotations


def report(result):
    """Print an experiment result table underneath the benchmark output."""
    print()
    print(result.render())
    print()
