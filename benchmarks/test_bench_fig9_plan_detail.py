"""Figure 9: detail of the plans generated for one EC2 instance, executed on data."""

from conftest import report

from repro.experiments.figures import figure9_plan_detail


def test_fig9_plan_detail(benchmark):
    """The [3 stars, 2 corners, 1 view] instance yields 8 plans; view-plans run faster."""
    result = benchmark.pedantic(
        figure9_plan_detail,
        kwargs={"stars": 3, "corners": 2, "views": 1, "size": 5000},
        iterations=1,
        rounds=1,
    )
    report(result)
    assert len(result.rows) == 8  # the paper's table also lists 8 plans
    assert all(row[-1] for row in result.rows)  # every plan returns the original answer
    # The rows are sorted by execution time; the fastest plan uses at least
    # one view and the slowest is the original all-corner-scans query.
    assert result.rows[0][2] != "-"
    assert result.rows[-1][2] == "-"
    assert result.rows[0][1] <= result.rows[-1][1]
