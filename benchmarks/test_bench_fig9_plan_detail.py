"""Figure 9: detail of the plans generated for one EC2 instance, executed on data."""

from conftest import record_bench, report

from repro.experiments.figures import figure9_plan_detail


def test_fig9_plan_detail(benchmark):
    """The [3 stars, 2 corners, 1 view] instance yields 8 plans; view-plans run faster."""
    result = benchmark.pedantic(
        figure9_plan_detail,
        kwargs={"stars": 3, "corners": 2, "views": 1, "size": 5000},
        iterations=1,
        rounds=1,
    )
    record_bench(
        "fig9_plan_detail",
        result=result,
        counters={
            "optimization_time_s": round(result.measurement.optimization_time, 6),
            "original_execution_time_s": round(
                result.measurement.original_execution_time, 6
            ),
        },
    )
    report(result)
    assert len(result.rows) == 8  # the paper's table also lists 8 plans
    assert all(row[-1] for row in result.rows)  # every plan returns the original answer
    # The rows are sorted by execution time; the fastest plan uses at least
    # one view, and the original all-corner-scans query is far slower than
    # the best view plan.  (Asserted as a wide ratio rather than "literally
    # the last row": a GC pause or lazy hash-index build can spike any one
    # measurement by tens of milliseconds, which reorders the tail.)
    assert result.rows[0][2] != "-"
    original = next((row for row in result.rows if row[2] == "-"), None)
    assert original is not None, "the original all-corner-scans plan is missing"
    assert original[1] >= 5 * result.rows[0][1]
