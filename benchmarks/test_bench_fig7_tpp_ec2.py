"""Figure 7: optimization time per generated plan on EC2 (the hardest configuration)."""

from conftest import report

from repro.experiments.figures import figure7_ec2


def test_fig7_ec2_time_per_plan(benchmark):
    """FB cannot keep pace with OQF and OCS as stars/corners/views grow."""
    result = benchmark.pedantic(
        figure7_ec2,
        kwargs={"points": ((1, 1, 3), (2, 1, 3), (1, 2, 3), (2, 1, 4)), "timeout": 90},
        iterations=1,
        rounds=1,
    )
    report(result)
    for row in result.rows:
        _, fb_tpp, oqf_tpp, ocs_tpp, _ = row
        # OCS is never slower per plan than FB (it gives up completeness for speed).
        assert ocs_tpp <= fb_tpp * 1.5 + 0.05
    # On the multi-view settings OQF beats FB per plan.
    assert result.rows[1][2] <= result.rows[1][1]
    assert result.rows[3][2] <= result.rows[3][1]
