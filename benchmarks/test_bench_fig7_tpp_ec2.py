"""Figure 7: optimization time per generated plan on EC2 (the hardest configuration)."""

from conftest import record_bench, report

from repro.experiments.figures import figure7_ec2


def test_fig7_ec2_time_per_plan(benchmark):
    """FB cannot keep pace with OQF and OCS as stars/corners/views grow."""
    result = benchmark.pedantic(
        figure7_ec2,
        kwargs={"points": ((1, 1, 3), (2, 1, 3), (1, 2, 3), (2, 1, 4)), "timeout": 90},
        iterations=1,
        rounds=1,
    )
    record_bench("fig7_ec2", result=result)
    report(result)
    for row in result.rows:
        fb_tpp, oqf_tpp, ocs_tpp = row[1], row[2], row[3]
        # OCS is never slower per plan than FB (it gives up completeness for
        # speed); wall-clock gets a noise slack because the indexed engine —
        # and, since the restriction/containment memoisation, the warm run
        # paths — pushed per-plan times into the low-millisecond range, where
        # a single scheduler hiccup on a 1-CPU container exceeds the old
        # bound.  The machine-independent ordering claim is the closure-query
        # assertion below; the wall-clock one only guards against gross
        # regressions.
        assert ocs_tpp <= fb_tpp * 1.5 + 0.25
        assert oqf_tpp <= fb_tpp * 1.5 + 0.25
        # The machine-independent form of the figure's ordering claim: OQF's
        # fragmented pipeline never does more closure work than monolithic FB.
        fb_queries, oqf_queries = row[5], row[6]
        assert oqf_queries <= fb_queries
