"""Scaling benchmark: wave-parallel backchase vs. the sequential engine.

Chases one EC2 instance to its universal plan, runs the sequential
:class:`FullBackchase` as the baseline, then the wave-parallel
:class:`ParallelBackchase` (``processes`` executor) at 1/2/4/8 workers on the
same plan.  Two claims are checked and recorded into ``BENCH_PR2.json``:

* **correctness** — every parallel run produces a plan set
  signature-identical to the sequential engine's (hard assertion);
* **scaling** — wall-clock speedup vs. the sequential baseline per worker
  count, always recorded.  The >= 1.5x at 4 workers claim is only *asserted*
  when ``BENCH_ASSERT_SPEEDUP=1`` is set **and** the host exposes >= 4
  usable cores: shared CI runners and laptops under load make hard speedup
  assertions flaky, so the default run records the trajectory (alongside
  ``cpu_count``) without gating the suite on it.

``BENCH_QUICK=1`` (the ``make bench-quick`` target) shrinks the instance and
the worker grid so the benchmark finishes in a few seconds.
"""

import os

from conftest import record_bench, report

from repro.experiments.figures import parallel_backchase_scaling


def _usable_cpus():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def test_parallel_backchase_scaling(benchmark):
    quick = bool(os.environ.get("BENCH_QUICK"))
    kwargs = (
        {"stars": 1, "corners": 4, "views": 2, "worker_counts": (1, 2, 4), "timeout": 60}
        if quick
        else {"stars": 2, "corners": 4, "views": 2, "worker_counts": (1, 2, 4, 8), "timeout": 90}
    )
    result = benchmark.pedantic(
        parallel_backchase_scaling,
        kwargs={**kwargs, "executor": "processes"},
        iterations=1,
        rounds=1,
    )
    report(result)

    by_workers = {row[0]: row for row in result.rows}
    speedups = {workers: row[3] for workers, row in by_workers.items()}
    record_bench(
        "parallel_backchase_ec2_quick" if quick else "parallel_backchase_ec2",
        result=result,
        bench_file="BENCH_PR2.json",
        counters={
            "serial_backchase_s": round(result.measurements[0].serial_time, 6),
            "speedup_by_workers": {str(w): s for w, s in sorted(speedups.items())},
        },
        executor="processes",
        cpu_count=os.cpu_count(),
        usable_cpus=_usable_cpus(),
        quick=quick,
    )

    # Correctness: the wave engine's plan sets are signature-identical to the
    # sequential engine's at every worker count, and nothing timed out.  A
    # timed-out *serial* baseline would make the reference plan set partial
    # and every comparison meaningless, so that fails loudly on its own.
    for measurement in result.measurements:
        assert not measurement.serial_timed_out, "serial baseline timed out; raise the timeout"
        assert measurement.plans_match_serial
        assert not measurement.timed_out

    # Scaling: only asserted on explicit opt-in AND capable hardware (shared
    # CI runners make hard wall-clock assertions flaky).
    if os.environ.get("BENCH_ASSERT_SPEEDUP") and _usable_cpus() >= 4 and 4 in speedups:
        assert speedups[4] >= 1.5
