"""Cache-persistence benchmark: warm restart + containment-memo hit rate.

Runs the mixed EC1/EC2/EC3 request mix through a cold
:class:`~repro.service.OptimizerService`, snapshots its warm sessions
(chase-cache registries + containment memos) with ``save_caches``, loads the
snapshot into a brand-new service and replays the same requests.  Three
claims are checked and recorded into ``BENCH_PR5.json``:

* **correctness** — the restarted service's plan sets are
  signature-identical to the cold ones (hard assertion: persistence must
  never change a plan);
* **memoisation** — the containment memo actually fires: the cold life's
  within-run memo hit rate is > 0 (rounds after the first reuse the earlier
  rounds' verdicts), and the restarted life answers essentially every
  verdict from the loaded memo;
* **restart speedup** — the restarted service finishes the 56-request
  workload >= 1.2x faster than the cold start (asserted at the default
  scale only; ``BENCH_QUICK=1`` shrinks to 3 rounds and records without the
  assertion).
"""

import os

from conftest import record_bench, report

from repro.experiments.figures import warm_restart

BENCH_FILE = "BENCH_PR5.json"


def test_warm_restart(benchmark):
    quick = bool(os.environ.get("BENCH_QUICK"))
    repeats = 3 if quick else 8  # 8 x 7-config mix = 56 requests
    result = benchmark.pedantic(
        warm_restart,
        kwargs={"repeats": repeats, "shards": 2, "workers": 2, "timeout": 60},
        iterations=1,
        rounds=1,
    )
    report(result)
    measurement = result.measurement

    # Correctness: a restarted server never changes a plan set.
    assert measurement.plans_match
    assert measurement.errors == 0

    # The containment memo fires within the cold life (cross-request reuse)
    # and dominates the restarted life (cross-process reuse).
    assert measurement.memo_hit_rate_cold > 0
    assert measurement.memo_hits_restart > 0

    if not quick:
        assert measurement.request_count >= 50
        # The acceptance bar: loading the snapshot must beat redoing the
        # chases and containment searches by >= 1.2x on this container.
        assert measurement.speedup >= 1.2, (
            f"warm-restart speedup {measurement.speedup:.2f}x < 1.2x "
            f"(cold {measurement.cold_seconds:.2f}s, "
            f"restarted {measurement.restart_seconds:.2f}s)"
        )
        assert measurement.memo_hit_rate_restart > 0.9
        assert measurement.cache_hit_rate_restart > 0.9

    record_bench(
        "warm_restart",
        wall_clock=measurement.cold_seconds + measurement.restart_seconds,
        counters={
            "requests": measurement.request_count,
            "distinct_configs": measurement.distinct_configs,
            "shards": measurement.shards,
            "workers": measurement.workers,
            "cold_seconds": round(measurement.cold_seconds, 3),
            "restart_seconds": round(measurement.restart_seconds, 3),
            "speedup_restart_vs_cold": round(measurement.speedup, 3),
            "cache_hit_rate_cold": round(measurement.cache_hit_rate_cold, 4),
            "memo_hit_rate_cold": round(measurement.memo_hit_rate_cold, 4),
            "cache_hit_rate_restart": round(measurement.cache_hit_rate_restart, 4),
            "memo_hit_rate_restart": round(measurement.memo_hit_rate_restart, 4),
            "memo_hits_cold": measurement.memo_hits_cold,
            "memo_hits_restart": measurement.memo_hits_restart,
            "sessions_saved": measurement.sessions_saved,
            "snapshot_bytes": measurement.snapshot_bytes,
            "plans_match": measurement.plans_match,
            "quick_mode": quick,
        },
        result=result,
        bench_file=BENCH_FILE,
        cpu_count=os.cpu_count(),
    )
